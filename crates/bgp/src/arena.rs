//! Dense, `u32`-indexed arena storage for per-node BGP state.
//!
//! The first-generation [`crate::node::BgpNode`] kept three pointer-heavy
//! maps per node — `slot_of: BTreeMap<AsId, u32>`, `prefixes:
//! BTreeMap<Prefix, PrefixState>` and `damp: BTreeMap<(u32, Prefix),
//! DampState>` — which at Internet scale (50k–70k ASes) means millions of
//! scattered tree nodes, cache-hostile walks on every update, and a large
//! constant allocation overhead per simulated C-event. This module
//! replaces them with three flat structures sharing one id-space
//! discipline:
//!
//! * **AS id** (`AsId`) — the global, topology-wide node index. Only ever
//!   translated at the edge of a node (who sent me this update?).
//! * **slot** (`u32`) — a node-local session index, `0..degree`. All hot
//!   per-neighbor state (Adj-RIB-in columns, output queues, liveness) is
//!   slot-indexed.
//! * **prefix row** (`usize`) — a node-local index into the sorted prefix
//!   column of the [`PrefixTable`]; all per-prefix state lives in
//!   structure-of-arrays columns addressed by row.
//!
//! [`SessionSlab`] is the AS-id ↔ slot translation table, built **once**
//! from the topology and shared by every node (and the simulator's timer
//! epochs) through an `Arc`: per-node session state costs zero
//! allocations at instantiation time.
//!
//! [`PrefixTable`] stores per-prefix state as parallel columns keyed by a
//! sorted prefix row index, with the Adj-RIB-in laid out **prefix-major**
//! (`row * slots + slot`) so the decision process scans one contiguous
//! stripe. Iterating rows yields prefixes in sorted order — the same
//! deterministic order the `BTreeMap` gave, which whole-table operations
//! (session resets, session-up replays) rely on for bit-identical
//! artifacts.
//!
//! Damping state ([`DampTable`]) stays sparse — entries exist only for
//! routes with flap history, and the paper's configuration disables RFD
//! entirely — so it is a flat sorted `Vec` with binary-search access
//! rather than a dense row×slot matrix, and it allocates nothing until
//! the first flap is charged.

use std::sync::Arc;

use bgpscale_topology::AsId;

use crate::message::{AsPath, Prefix};
use crate::node::Session;
use crate::rfd::DampState;

/// Sentinel slot index meaning "the route is self-originated".
pub const SELF_SLOT: u32 = u32::MAX;

/// Sentinel slot index meaning "no best route" in the best-slot column.
pub(crate) const NO_BEST: u32 = u32::MAX - 1;

/// Documented per-element byte costs for the deterministic arena-size
/// estimate (see [`PrefixTable::arena_bytes`]). These are *fixed model
/// constants*, deliberately not `size_of` (which could drift between
/// toolchains and break bit-identical op counts): a slot cell models an
/// `Option<AsPath>` as pointer + length + discriminant word plus its
/// cached 16-byte preference key and 4-byte order/limbo entry, a row
/// models the prefix/originated/best-slot/best-path columns plus the
/// sorted-order and limbo vector headers and the validity flag.
const BYTES_PER_RIB_CELL: u64 = 44;
const BYTES_PER_ROW: u64 = 88;
const BYTES_PER_SESSION: u64 = 16;
const BYTES_PER_DAMP_ENTRY: u64 = 40;

/// The topology-wide session arena: every node's sessions and its
/// AS-id → slot lookup live in two shared concatenated columns, built
/// once and shared by all nodes via `Arc`.
#[derive(Clone, Debug)]
pub struct SessionSlab {
    /// All sessions, concatenated per node in slot order.
    sessions: Vec<Session>,
    /// Per node, the `(peer, slot)` pairs sorted by peer AS id — the
    /// dense replacement for the per-node `BTreeMap<AsId, u32>`.
    lookup: Vec<(AsId, u32)>,
    /// Per node: offset into both columns (length = next offset). The
    /// extra trailing entry makes `range(i)` branch-free.
    offsets: Vec<u32>,
}

impl SessionSlab {
    /// Builds the slab from per-node session lists (indexed by node).
    ///
    /// # Panics
    /// Panics if any node has a session with itself or a duplicate peer
    /// (`ids[i]` is node `i`'s AS id — normally `AsId(i)`).
    pub fn build<F>(node_count: usize, id_of: F, sessions_of: &[Vec<Session>]) -> Arc<SessionSlab>
    where
        F: Fn(usize) -> AsId,
    {
        assert_eq!(node_count, sessions_of.len());
        let total: usize = sessions_of.iter().map(|s| s.len()).sum();
        let mut slab = SessionSlab {
            sessions: Vec::with_capacity(total),
            lookup: Vec::with_capacity(total),
            offsets: Vec::with_capacity(node_count + 1),
        };
        slab.offsets.push(0);
        for (i, sess) in sessions_of.iter().enumerate() {
            let id = id_of(i);
            let base = slab.sessions.len();
            for (slot, s) in sess.iter().enumerate() {
                assert_ne!(s.peer, id, "session with self at {id}");
                slab.sessions.push(*s);
                slab.lookup.push((s.peer, slot as u32));
            }
            let node_lookup = &mut slab.lookup[base..];
            node_lookup.sort_unstable_by_key(|&(peer, _)| peer);
            for pair in node_lookup.windows(2) {
                assert_ne!(pair[0].0, pair[1].0, "duplicate session {id}–{}", pair[0].0);
            }
            slab.offsets
                .push(u32::try_from(slab.sessions.len()).expect("session count fits u32"));
        }
        Arc::new(slab)
    }

    /// Builds a one-node slab (unit tests and standalone nodes).
    pub fn for_single(id: AsId, sessions: Vec<Session>) -> Arc<SessionSlab> {
        Self::build(1, |_| id, std::slice::from_ref(&sessions))
    }

    /// Number of nodes in the slab.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the slab holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // detflow::allow(panic-surface, reason = "node < len() is the caller contract; offsets has len()+1 entries by construction so node and node+1 are in bounds")
    fn range(&self, node: u32) -> std::ops::Range<usize> {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        lo..hi
    }

    /// Node `node`'s sessions, in slot order.
    // detflow::allow(panic-surface, reason = "range() returns offsets bounded by sessions.len() (the final offsets entry) by construction")
    pub fn sessions(&self, node: u32) -> &[Session] {
        &self.sessions[self.range(node)]
    }

    /// Node `node`'s degree (session count).
    pub fn degree(&self, node: u32) -> u32 {
        let r = self.range(node);
        (r.end - r.start) as u32
    }

    /// The slot of `peer` on node `node`, if it is a neighbor — a binary
    /// search over the node's sorted lookup stripe.
    // detflow::allow(panic-surface, reason = "range() is in bounds for lookup, which parallels sessions; binary_search returns an index inside the searched slice")
    pub fn slot_of(&self, node: u32, peer: AsId) -> Option<u32> {
        let stripe = &self.lookup[self.range(node)];
        stripe
            .binary_search_by_key(&peer, |&(p, _)| p)
            .ok()
            .map(|i| stripe[i].1)
    }

    /// Index of node `node`'s slot 0 in the global session id space —
    /// the base for flat per-session side tables (the simulator's MRAI
    /// epoch array indexes `first_session(node) + slot`).
    // detflow::allow(panic-surface, reason = "node <= len() is the caller contract and offsets has len()+1 entries by construction")
    pub fn first_session(&self, node: u32) -> u32 {
        self.offsets[node as usize]
    }

    /// Total sessions across all nodes.
    pub fn total_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Deterministic estimate of the slab's resident bytes (model
    /// constants, not `size_of`; see module docs).
    pub fn arena_bytes(&self) -> u64 {
        self.sessions.len() as u64 * BYTES_PER_SESSION * 2 // sessions + lookup
            + self.offsets.len() as u64 * 4
    }
}

/// Structure-of-arrays per-prefix state for one node: parallel columns
/// addressed by a sorted prefix row index, plus a prefix-major
/// Adj-RIB-in matrix.
#[derive(Clone, Debug)]
pub struct PrefixTable {
    slots: u32,
    /// Sorted prefix column: the row index.
    prefixes: Vec<Prefix>,
    /// True while this node originates the row's prefix.
    originated: Vec<bool>,
    /// Loc-RIB best: a slot, [`SELF_SLOT`], or [`NO_BEST`].
    best_slot: Vec<u32>,
    /// The best AS path as received (empty for self-originated routes
    /// and for [`NO_BEST`] rows).
    best_path: Vec<AsPath>,
    /// Cached packed preference key per Adj-RIB-in cell (same indexing
    /// as `rib_in`; meaningful only while the cell holds a route). Lets
    /// the decision process compare candidates by one integer compare
    /// instead of re-deriving the full preference tuple from the path.
    rib_key: Vec<u128>,
    /// Per-row candidate slots sorted ascending by `rib_key` — the last
    /// entry is the best route. Maintained incrementally with damping
    /// off: a withdrawal is a positional remove (zero preference
    /// comparisons) and an announcement one comparison against the top,
    /// so no decision run ever rescans the row.
    order: Vec<Vec<u32>>,
    /// Per-row unranked candidates, in arrival order: routes that lost
    /// their one comparison against the then-best and whose rank among
    /// the rest is not yet needed. Invariant: every limbo entry's key is
    /// below the current top of `order` (it lost to the top reigning at
    /// its arrival, and the top only ever rises until it is removed —
    /// which drains limbo into `order`). Defers the sort work to
    /// withdrawal storms, where it amortizes to one binary insertion per
    /// candidate instead of a full rescan per withdrawal.
    limbo: Vec<Vec<u32>>,
    /// Whether `order` is exact for the row. Cleared wholesale when
    /// route-eligibility rules change (damping reconfiguration); an
    /// invalid row is rebuilt — with counted comparisons — on its next
    /// undamped decision run.
    order_valid: Vec<bool>,
    /// Adj-RIB-in, prefix-major: `rib_in[row * slots + slot]`.
    rib_in: Vec<Option<AsPath>>,
}

impl PrefixTable {
    /// Creates an empty table for a node with `slots` sessions.
    pub fn new(slots: u32) -> Self {
        PrefixTable {
            slots,
            prefixes: Vec::new(),
            originated: Vec::new(),
            best_slot: Vec::new(),
            best_path: Vec::new(),
            rib_key: Vec::new(),
            order: Vec::new(),
            limbo: Vec::new(),
            order_valid: Vec::new(),
            rib_in: Vec::new(),
        }
    }

    /// Number of prefix rows.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True if no prefix has any state.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The row of `prefix`, if present.
    pub fn row(&self, prefix: Prefix) -> Option<usize> {
        self.prefixes.binary_search(&prefix).ok()
    }

    /// The row of `prefix`, inserting an empty row if absent.
    pub fn row_or_insert(&mut self, prefix: Prefix) -> usize {
        match self.prefixes.binary_search(&prefix) {
            Ok(row) => row,
            Err(row) => {
                let slots = self.slots as usize;
                self.prefixes.insert(row, prefix);
                self.originated.insert(row, false);
                self.best_slot.insert(row, NO_BEST);
                self.best_path.insert(row, AsPath::new());
                self.order.insert(row, Vec::new());
                self.limbo.insert(row, Vec::new());
                // A fresh row is vacuously in order: no candidates yet.
                self.order_valid.insert(row, true);
                self.rib_in.splice(
                    row * slots..row * slots,
                    std::iter::repeat_with(|| None).take(slots),
                );
                self.rib_key
                    .splice(row * slots..row * slots, std::iter::repeat(0).take(slots));
                row
            }
        }
    }

    /// The prefix at `row`.
    pub fn prefix_at(&self, row: usize) -> Prefix {
        self.prefixes[row]
    }

    /// The Adj-RIB-in stripe of `row`: one cell per slot.
    // detflow::allow(panic-surface, reason = "row is a live row index, and rib_in holds exactly len()*slots cells by construction")
    pub fn rib_in(&self, row: usize) -> &[Option<AsPath>] {
        let slots = self.slots as usize;
        &self.rib_in[row * slots..(row + 1) * slots]
    }

    /// One Adj-RIB-in cell.
    // detflow::allow(panic-surface, reason = "row is a live row index and slot < slots is the session-slot contract; the cell index is inside the row's stripe")
    pub fn rib_in_cell(&self, row: usize, slot: u32) -> &Option<AsPath> {
        &self.rib_in[row * self.slots as usize + slot as usize]
    }

    /// Overwrites one Adj-RIB-in cell.
    // detflow::allow(panic-surface, reason = "row is a live row index and slot < slots is the session-slot contract; the cell index is inside the row's stripe")
    pub fn set_rib_in(&mut self, row: usize, slot: u32, path: Option<AsPath>) {
        self.rib_in[row * self.slots as usize + slot as usize] = path;
    }

    /// True while the node originates the row's prefix.
    // detflow::allow(panic-surface, reason = "row is a live row index; the originated column parallels the prefix column")
    pub fn originated(&self, row: usize) -> bool {
        self.originated[row]
    }

    /// Marks/unmarks the row's prefix as self-originated.
    // detflow::allow(panic-surface, reason = "row is a live row index; the originated column parallels the prefix column")
    pub fn set_originated(&mut self, row: usize, on: bool) {
        self.originated[row] = on;
    }

    /// The Loc-RIB best for `row`: `None` if unreachable, else
    /// `(slot-or-SELF_SLOT, path as received)`.
    // detflow::allow(panic-surface, reason = "row is a live row index; best columns parallel the prefix column")
    pub fn best(&self, row: usize) -> Option<(u32, &AsPath)> {
        match self.best_slot[row] {
            NO_BEST => None,
            slot => Some((slot, &self.best_path[row])),
        }
    }

    /// Replaces the Loc-RIB best for `row`.
    // detflow::allow(panic-surface, reason = "row is a live row index; best columns parallel the prefix column")
    pub fn set_best(&mut self, row: usize, best: Option<(u32, AsPath)>) {
        match best {
            None => {
                self.best_slot[row] = NO_BEST;
                self.best_path[row] = AsPath::new();
            }
            Some((slot, path)) => {
                debug_assert_ne!(slot, NO_BEST);
                self.best_slot[row] = slot;
                self.best_path[row] = path;
            }
        }
    }

    /// Whether the sorted candidate order for `row` is exact.
    // detflow::allow(panic-surface, reason = "row is a live row index; the order columns parallel the prefix column")
    pub(crate) fn order_valid(&self, row: usize) -> bool {
        self.order_valid[row]
    }

    /// Marks the sorted candidate order for `row` exact or stale.
    // detflow::allow(panic-surface, reason = "row is a live row index; the order columns parallel the prefix column")
    pub(crate) fn set_order_valid(&mut self, row: usize, valid: bool) {
        self.order_valid[row] = valid;
    }

    /// Applies one Adj-RIB-in cell change to the row's candidate
    /// bookkeeping, returning the number of key comparisons performed.
    /// `key` is the packed preference key of the slot's new route, or
    /// `None` for a withdrawal.
    ///
    /// Cost shape (the point of the limbo design):
    /// * withdrawal of a non-top candidate — **0** comparisons;
    /// * announcement into an occupied row — **1** comparison against the
    ///   top (winners append, losers park unranked in limbo);
    /// * removal of the top — limbo drains into the sorted order, one
    ///   counted binary insertion per parked candidate. Each candidate
    ///   pays its `log k` ranking cost at most once per reign of a top,
    ///   so a withdrawal storm costs `k·log k` amortized instead of the
    ///   `k` comparisons per withdrawal a rescan would pay.
    // detflow::allow(panic-surface, reason = "row is a live row index; positional scans yield indices inside the scanned vectors and cell indices stay within the row's key stripe")
    pub(crate) fn order_update(&mut self, row: usize, slot: u32, key: Option<u128>) -> u64 {
        let base = row * self.slots as usize;
        let mut comparisons = 0u64;
        // An improving (or identical) re-announcement at the reigning top
        // keeps its crown without consulting anyone else: the old key
        // already beat every other candidate.
        if let Some(key) = key {
            if self.order[row].last() == Some(&slot) {
                comparisons += 1;
                if key >= self.rib_key[base + slot as usize] {
                    self.rib_key[base + slot as usize] = key;
                    return comparisons;
                }
            }
        }
        // Remove any existing entry for the slot — positional scans, zero
        // preference comparisons. Removing the top invalidates the limbo
        // invariant (parked routes only ever lost to a *current or past*
        // top), so limbo drains into the sorted order first.
        let ord = &mut self.order[row];
        let was_top = match ord.iter().position(|&x| x == slot) {
            Some(pos) => {
                let top = pos + 1 == ord.len();
                ord.remove(pos);
                top
            }
            None => {
                let lim = &mut self.limbo[row];
                if let Some(pos) = lim.iter().position(|&x| x == slot) {
                    lim.remove(pos);
                }
                false
            }
        };
        if was_top {
            comparisons += self.drain_limbo(row);
        }
        if let Some(key) = key {
            self.rib_key[base + slot as usize] = key;
            match self.order[row].last().copied() {
                // Limbo is empty whenever the order is (draining on every
                // top removal guarantees it), so a lone candidate rules.
                None => self.order[row].push(slot),
                Some(top) => {
                    comparisons += 1;
                    if key > self.rib_key[base + top as usize] {
                        self.order[row].push(slot);
                    } else {
                        self.limbo[row].push(slot);
                    }
                }
            }
        }
        comparisons
    }

    /// Ranks every parked candidate into the sorted order (in arrival
    /// order, which is deterministic), returning the comparisons counted
    /// by the binary insertions.
    // detflow::allow(panic-surface, reason = "row is a live row index; the limbo column parallels the prefix column")
    fn drain_limbo(&mut self, row: usize) -> u64 {
        let mut comparisons = 0u64;
        let parked = std::mem::take(&mut self.limbo[row]);
        for slot in &parked {
            comparisons += self.binary_insert(row, *slot);
        }
        // Hand the emptied buffer back so the row keeps its allocation.
        self.limbo[row] = parked;
        self.limbo[row].clear();
        comparisons
    }

    /// Inserts `slot` (whose Adj-RIB-in cell must hold a route) into the
    /// row's sorted candidate order under cached key `key`, returning the
    /// number of key comparisons the binary search performed. Used by
    /// full rebuilds; incremental maintenance goes through
    /// [`PrefixTable::order_update`].
    // detflow::allow(panic-surface, reason = "row is a live row index and slot < slots is the caller contract, so the key-stripe cell is in bounds")
    pub(crate) fn order_insert(&mut self, row: usize, slot: u32, key: u128) -> u64 {
        self.rib_key[row * self.slots as usize + slot as usize] = key;
        self.binary_insert(row, slot)
    }

    /// Binary-inserts `slot` into the row's sorted order by its cached
    /// key, counting one comparison per probe. Keys are distinct across
    /// slots (the packed key ends in the neighbor id), so the insertion
    /// point is unambiguous.
    // detflow::allow(panic-surface, reason = "row is a live row index; lo/hi stay within the order vector and cell indices within the row's key stripe")
    fn binary_insert(&mut self, row: usize, slot: u32) -> u64 {
        let base = row * self.slots as usize;
        let key = self.rib_key[base + slot as usize];
        let ord = &mut self.order[row];
        let mut comparisons = 0u64;
        let (mut lo, mut hi) = (0usize, ord.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            comparisons += 1;
            if self.rib_key[base + ord[mid] as usize] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        ord.insert(lo, slot);
        comparisons
    }

    /// Clears the row's candidate bookkeeping (prelude to a rebuild).
    // detflow::allow(panic-surface, reason = "row is a live row index; the order columns parallel the prefix column")
    pub(crate) fn order_clear_row(&mut self, row: usize) {
        self.order[row].clear();
        self.limbo[row].clear();
    }

    /// The best candidate slot for `row` per the sorted order (the
    /// largest cached key), or `None` for an empty row. Only meaningful
    /// while [`PrefixTable::order_valid`] holds.
    // detflow::allow(panic-surface, reason = "row is a live row index; the order columns parallel the prefix column")
    pub(crate) fn order_best(&self, row: usize) -> Option<u32> {
        self.order[row].last().copied()
    }

    /// Marks every row's sorted order stale (used when route-eligibility
    /// rules change, e.g. a damping reconfiguration).
    pub(crate) fn invalidate_orders(&mut self) {
        self.order_valid.fill(false);
    }

    /// Iterates `(row, prefix)` in sorted prefix order — the same
    /// deterministic order the former `BTreeMap` iteration gave.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, Prefix)> + '_ {
        self.prefixes.iter().copied().enumerate()
    }

    /// Drops all rows (columns keep their allocations).
    pub fn clear(&mut self) {
        self.prefixes.clear();
        self.originated.clear();
        self.best_slot.clear();
        self.best_path.clear();
        self.rib_key.clear();
        self.order.clear();
        self.limbo.clear();
        self.order_valid.clear();
        self.rib_in.clear();
    }

    /// Deterministic estimate of the table's resident bytes (model
    /// constants, not `size_of`; see module docs).
    pub fn arena_bytes(&self) -> u64 {
        self.prefixes.len() as u64 * (BYTES_PER_ROW + self.slots as u64 * BYTES_PER_RIB_CELL)
    }
}

/// Sparse per-(slot, prefix) damping state: a flat sorted vector with
/// binary-search access. Iteration and retention run in (slot, prefix)
/// order, matching the former `BTreeMap<(u32, Prefix), DampState>`.
/// Allocates nothing until the first flap is charged.
#[derive(Clone, Debug, Default)]
pub struct DampTable {
    entries: Vec<((u32, Prefix), DampState)>,
}

impl DampTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DampTable::default()
    }

    /// True if no route has flap history.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of (slot, prefix) pairs with flap history.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The damping state for `(slot, prefix)`, if any.
    // detflow::allow(panic-surface, reason = "binary_search's Ok index is inside entries by contract")
    pub fn get(&self, slot: u32, prefix: Prefix) -> Option<&DampState> {
        self.entries
            .binary_search_by_key(&(slot, prefix), |&(k, _)| k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Mutable damping state for `(slot, prefix)`, if any.
    // detflow::allow(panic-surface, reason = "binary_search's Ok index is inside entries by contract")
    pub fn get_mut(&mut self, slot: u32, prefix: Prefix) -> Option<&mut DampState> {
        self.entries
            .binary_search_by_key(&(slot, prefix), |&(k, _)| k)
            .ok()
            .map(|i| &mut self.entries[i].1)
    }

    /// The damping state for `(slot, prefix)`, default-inserting.
    // detflow::allow(panic-surface, reason = "on Ok the index is a hit inside entries; on Err it is the sorted insertion point just inserted at")
    pub fn get_or_insert(&mut self, slot: u32, prefix: Prefix) -> &mut DampState {
        let key = (slot, prefix);
        let i = match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, DampState::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Drops every entry for `slot` (session reset).
    pub fn clear_slot(&mut self, slot: u32) {
        self.entries.retain(|&((s, _), _)| s != slot);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Deterministic estimate of resident bytes (model constants).
    pub fn arena_bytes(&self) -> u64 {
        self.entries.len() as u64 * BYTES_PER_DAMP_ENTRY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::Relationship;

    fn session(peer: u32, rel: Relationship) -> Session {
        Session {
            peer: AsId(peer),
            rel,
        }
    }

    #[test]
    fn slab_translates_ids_to_slots_per_node() {
        let slab = SessionSlab::build(
            3,
            |i| AsId(i as u32),
            &[
                vec![session(1, Relationship::Peer), session(2, Relationship::Customer)],
                vec![session(0, Relationship::Peer)],
                vec![session(0, Relationship::Provider)],
            ],
        );
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.total_sessions(), 4);
        assert_eq!(slab.degree(0), 2);
        assert_eq!(slab.slot_of(0, AsId(1)), Some(0));
        assert_eq!(slab.slot_of(0, AsId(2)), Some(1));
        assert_eq!(slab.slot_of(0, AsId(3)), None);
        assert_eq!(slab.slot_of(1, AsId(0)), Some(0));
        assert_eq!(slab.sessions(2)[0].peer, AsId(0));
        assert!(slab.arena_bytes() > 0);
    }

    #[test]
    fn slab_lookup_is_sorted_independently_of_slot_order() {
        // Slots keep declaration order; the lookup stripe sorts by peer.
        let slab = SessionSlab::for_single(
            AsId(0),
            vec![
                session(9, Relationship::Peer),
                session(3, Relationship::Customer),
                session(7, Relationship::Provider),
            ],
        );
        assert_eq!(slab.slot_of(0, AsId(9)), Some(0));
        assert_eq!(slab.slot_of(0, AsId(3)), Some(1));
        assert_eq!(slab.slot_of(0, AsId(7)), Some(2));
        assert_eq!(slab.sessions(0)[1].peer, AsId(3));
    }

    #[test]
    #[should_panic(expected = "duplicate session")]
    fn slab_rejects_duplicate_peers() {
        SessionSlab::for_single(
            AsId(0),
            vec![session(1, Relationship::Peer), session(1, Relationship::Customer)],
        );
    }

    #[test]
    #[should_panic(expected = "session with self")]
    fn slab_rejects_self_sessions() {
        SessionSlab::for_single(AsId(5), vec![session(5, Relationship::Peer)]);
    }

    #[test]
    fn prefix_table_rows_stay_sorted_and_isolated() {
        let mut t = PrefixTable::new(2);
        let r9 = t.row_or_insert(Prefix(9));
        let r3 = t.row_or_insert(Prefix(3));
        assert_eq!((r9, r3), (0, 0), "later smaller prefix shifts the row");
        let rows: Vec<Prefix> = t.iter_rows().map(|(_, p)| p).collect();
        assert_eq!(rows, vec![Prefix(3), Prefix(9)]);

        let r3 = t.row(Prefix(3)).unwrap();
        let r9 = t.row(Prefix(9)).unwrap();
        t.set_rib_in(r3, 1, Some(AsPath::from(vec![AsId(7)])));
        t.set_originated(r9, true);
        t.set_best(r9, Some((SELF_SLOT, AsPath::new())));

        assert!(t.rib_in(r3)[0].is_none());
        assert!(t.rib_in(r3)[1].is_some());
        assert!(t.rib_in(r9).iter().all(Option::is_none), "rows are isolated");
        assert!(t.originated(r9) && !t.originated(r3));
        assert_eq!(t.best(r3), None);
        assert_eq!(t.best(r9), Some((SELF_SLOT, &AsPath::new())));

        // Inserting a middle row shifts the stripes coherently.
        let r5 = t.row_or_insert(Prefix(5));
        assert_eq!(r5, 1);
        assert!(t.rib_in(r5).iter().all(Option::is_none));
        let r3 = t.row(Prefix(3)).unwrap();
        assert!(t.rib_in(r3)[1].is_some(), "row 3's stripe survived the shift");
        let r9 = t.row(Prefix(9)).unwrap();
        assert_eq!(t.best(r9), Some((SELF_SLOT, &AsPath::new())));

        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.row(Prefix(3)), None);
    }

    #[test]
    fn prefix_table_arena_bytes_scale_with_rows_and_slots() {
        let mut t = PrefixTable::new(8);
        assert_eq!(t.arena_bytes(), 0);
        t.row_or_insert(Prefix(1));
        let one = t.arena_bytes();
        t.row_or_insert(Prefix(2));
        assert_eq!(t.arena_bytes(), 2 * one, "bytes are a pure row count model");
    }

    #[test]
    fn damp_table_orders_like_the_old_btreemap() {
        let mut d = DampTable::new();
        assert!(d.is_empty());
        d.get_or_insert(1, Prefix(5)).suppressed = true;
        d.get_or_insert(0, Prefix(9)).suppressed = false;
        d.get_or_insert(1, Prefix(2)).suppressed = true;
        assert_eq!(d.len(), 3);
        assert!(d.get(1, Prefix(5)).unwrap().suppressed);
        assert!(d.get(2, Prefix(5)).is_none());
        d.get_mut(0, Prefix(9)).unwrap().suppressed = true;
        assert!(d.get(0, Prefix(9)).unwrap().suppressed);
        d.clear_slot(1);
        assert_eq!(d.len(), 1);
        assert!(d.get(1, Prefix(2)).is_none());
        assert!(d.get(0, Prefix(9)).is_some());
        d.clear();
        assert!(d.is_empty());
    }
}
