//! Protocol and timing configuration.

use bgpscale_simkernel::SimDuration;

use crate::rfd::RfdConfig;

/// How the MRAI timer treats explicit withdrawals (§2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MraiMode {
    /// RFC 1771 behavior (and Quagga's): explicit withdrawals are **not**
    /// rate-limited — they are sent the moment they are generated, and do
    /// not start the MRAI timer. This largely suppresses path exploration.
    NoWrate,
    /// RFC 4271 behavior: explicit withdrawals are rate-limited just like
    /// announcements. The paper shows this roughly doubles churn at tier-1
    /// nodes at n = 10000 and worse in dense cores.
    Wrate,
}

impl MraiMode {
    /// True when withdrawals are subject to the MRAI timer.
    pub fn rate_limits_withdrawals(self) -> bool {
        matches!(self, MraiMode::Wrate)
    }

    /// The paper's label for this mode.
    pub fn label(self) -> &'static str {
        match self {
            MraiMode::NoWrate => "NO-WRATE",
            MraiMode::Wrate => "WRATE",
        }
    }
}

/// The granularity at which the MRAI timer is applied (§2 of the paper:
/// *"According to the BGP-4 standard, the MRAI timer should be
/// implemented on a per-prefix basis. However, for efficiency reasons,
/// router vendors typically implement it on a per-interface basis. We
/// adopt this approach in our model."* — both are available here; the
/// paper's configuration is the default).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MraiScope {
    /// One timer per neighbor session, governing all prefixes (vendor
    /// practice; the paper's model).
    PerInterface,
    /// One timer per (neighbor session, prefix) — the RFC's intent.
    /// Updates for different prefixes never rate-limit each other.
    PerPrefix,
}

impl MraiScope {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MraiScope::PerInterface => "per-interface",
            MraiScope::PerPrefix => "per-prefix",
        }
    }
}

/// How per-message processing (service) times are drawn.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServiceTimeModel {
    /// Uniform over `(0, proc_delay_max]` — the paper's model.
    Uniform,
    /// Constant at `proc_delay_max / 2` (same mean as `Uniform`); an
    /// ablation knob for studying the role of service-time randomness.
    Constant,
}

/// All protocol timing knobs, with defaults matching §2 of the paper.
#[derive(Clone, Debug)]
pub struct BgpConfig {
    /// The Minimum Route Advertisement Interval, applied per neighbor
    /// interface (as vendors implement it, not per prefix). Default 30 s.
    pub mrai: SimDuration,
    /// Jitter range applied to each timer arming, as fractions of `mrai`;
    /// the BGP-4 standard specifies `[0.75, 1.0]`.
    pub mrai_jitter: (f64, f64),
    /// Withdrawal treatment; default [`MraiMode::NoWrate`] (the paper's
    /// configuration for everything except §6).
    pub mrai_mode: MraiMode,
    /// Timer granularity; default [`MraiScope::PerInterface`] (the
    /// paper's model, matching vendor practice).
    pub mrai_scope: MraiScope,
    /// Upper bound of the per-message processing time. The paper uses
    /// 100 ms.
    pub proc_delay_max: SimDuration,
    /// How service times are drawn from `proc_delay_max` (ablation knob;
    /// the paper uses [`ServiceTimeModel::Uniform`]).
    pub service_model: ServiceTimeModel,
    /// Constant link propagation delay. The paper models only queueing and
    /// processing delay; 2 ms is negligible against both the 100 ms
    /// processing bound and the 30 s MRAI, and merely breaks simultaneity.
    pub link_delay: SimDuration,
    /// Sender-side loop detection (§4.1): suppress exporting a route to a
    /// neighbor already on its AS path. Disabling it (ablation) makes the
    /// sender transmit and the receiver discard, inflating churn without
    /// changing routing outcomes.
    pub sender_side_loop_detection: bool,
    /// Route Flap Damping (RFC 2439); `None` (the default and the paper's
    /// configuration) disables it. See [`crate::rfd`].
    pub rfd: Option<RfdConfig>,
}

impl Default for BgpConfig {
    fn default() -> Self {
        BgpConfig {
            mrai: SimDuration::from_secs(30),
            mrai_jitter: (0.75, 1.0),
            mrai_mode: MraiMode::NoWrate,
            mrai_scope: MraiScope::PerInterface,
            proc_delay_max: SimDuration::from_millis(100),
            service_model: ServiceTimeModel::Uniform,
            link_delay: SimDuration::from_millis(2),
            sender_side_loop_detection: true,
            rfd: None,
        }
    }
}

impl BgpConfig {
    /// The paper's NO-WRATE configuration (also [`Default`]).
    pub fn no_wrate() -> Self {
        BgpConfig::default()
    }

    /// The paper's WRATE configuration (§6).
    pub fn wrate() -> Self {
        BgpConfig {
            mrai_mode: MraiMode::Wrate,
            ..BgpConfig::default()
        }
    }

    /// Validates ranges; the simulator calls this once at startup.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn check(&self) -> Result<(), String> {
        let (lo, hi) = self.mrai_jitter;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi && hi <= 1.0) {
            return Err(format!("mrai_jitter ({lo}, {hi}) must satisfy 0 < lo <= hi <= 1"));
        }
        if self.proc_delay_max.is_zero() {
            return Err("proc_delay_max must be positive (FIFO service time)".into());
        }
        if let Some(rfd) = &self.rfd {
            rfd.check().map_err(|e| format!("rfd: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = BgpConfig::default();
        assert_eq!(c.mrai, SimDuration::from_secs(30));
        assert_eq!(c.mrai_mode, MraiMode::NoWrate);
        assert_eq!(c.proc_delay_max, SimDuration::from_millis(100));
        assert_eq!(c.mrai_jitter, (0.75, 1.0));
        c.check().unwrap();
    }

    #[test]
    fn wrate_constructor_flips_only_the_mode() {
        let c = BgpConfig::wrate();
        assert_eq!(c.mrai_mode, MraiMode::Wrate);
        assert_eq!(c.mrai, BgpConfig::default().mrai);
        assert!(c.mrai_mode.rate_limits_withdrawals());
        assert!(!MraiMode::NoWrate.rate_limits_withdrawals());
    }

    #[test]
    fn labels() {
        assert_eq!(MraiMode::Wrate.label(), "WRATE");
        assert_eq!(MraiMode::NoWrate.label(), "NO-WRATE");
        assert_eq!(MraiScope::PerInterface.label(), "per-interface");
        assert_eq!(MraiScope::PerPrefix.label(), "per-prefix");
    }

    #[test]
    fn default_scope_is_the_papers() {
        assert_eq!(BgpConfig::default().mrai_scope, MraiScope::PerInterface);
    }

    #[test]
    fn check_rejects_bad_jitter() {
        let mut c = BgpConfig {
            mrai_jitter: (0.0, 1.0),
            ..Default::default()
        };
        assert!(c.check().is_err());
        c.mrai_jitter = (0.9, 0.5);
        assert!(c.check().is_err());
        c.mrai_jitter = (0.5, 1.5);
        assert!(c.check().is_err());
    }

    #[test]
    fn check_rejects_zero_processing_time() {
        let c = BgpConfig {
            proc_delay_max: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(c.check().is_err());
    }
}
