//! The BGP decision process.
//!
//! Route preference (§2 of the paper):
//!
//! 1. highest LOCAL_PREF (customer > peer > provider; self-originated
//!    routes outrank everything),
//! 2. shortest AS path,
//! 3. *"a hashed value of the node IDs"* — we hash the next-hop AS id with
//!    SplitMix64, preferring the smaller hash; a final comparison on the
//!    raw id makes the order total even under hash collisions.
//!
//! The hash tie-break (rather than, say, lowest id) avoids systematically
//! biasing traffic toward low-numbered ASes while staying fully
//! deterministic across runs.

use bgpscale_simkernel::rng::hash64;
use bgpscale_topology::{AsId, Relationship};

use crate::policy::{local_pref, RouteSource};

/// One candidate route in the decision process.
///
/// Borrows the hops as a plain slice so that callers can pass either an
/// interned [`crate::message::AsPath`] (via deref) or a raw `Vec<AsId>`
/// without converting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate<'a> {
    /// The neighbor the route was learned from (the next hop).
    pub neighbor: AsId,
    /// Our relationship to that neighbor.
    pub rel: Relationship,
    /// The AS path as received (neighbor first, origin last).
    pub path: &'a [AsId],
}

/// The totally ordered preference key of a candidate. Larger keys win.
///
/// Exposed so that property tests can verify antisymmetry and totality
/// directly.
pub fn preference_key(c: &Candidate<'_>) -> (u8, i64, std::cmp::Reverse<u64>, std::cmp::Reverse<u32>) {
    (
        local_pref(RouteSource::Learned(c.rel)),
        -(c.path.len() as i64),
        std::cmp::Reverse(hash64(c.neighbor.0 as u64)),
        std::cmp::Reverse(c.neighbor.0),
    )
}

/// [`preference_key`] packed into a single integer, larger-wins, for the
/// arena's cached-key column: field-by-field lexicographic order over
/// fixed-width fields is exactly integer order on the packed word.
///
/// Layout, most significant first: LOCAL_PREF (8 bits) | inverted path
/// length (24 bits — paths are bounded by the AS count, far below 2^24)
/// | inverted next-hop hash (64 bits) | inverted next-hop id (32 bits).
/// Inversion (`MAX - x` / `!x`) turns each "smaller wins" field into
/// "larger wins" without reordering equal values, so
/// `packed_key(a) > packed_key(b)  ⇔  preference_key(a) > preference_key(b)`
/// and keys for distinct neighbors are always distinct.
pub fn packed_key(c: &Candidate<'_>) -> u128 {
    debug_assert!((c.path.len() as u64) < (1 << 24), "AS path length overflows the key layout");
    let pref = local_pref(RouteSource::Learned(c.rel)) as u128;
    let inv_len = (0x00FF_FFFF - c.path.len() as u32) as u128;
    let inv_hash = !hash64(c.neighbor.0 as u64) as u128;
    let inv_id = !c.neighbor.0 as u128;
    (pref << 120) | (inv_len << 96) | (inv_hash << 32) | inv_id
}

/// Selects the best route among `candidates`, returning the index of the
/// winner, or `None` if there are no candidates.
///
/// Self-originated routes are handled by the caller ([`crate::BgpNode`])
/// since they always win.
pub fn select_best(candidates: &[Candidate<'_>]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| preference_key(c))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(neighbor: u32, rel: Relationship, path: &[AsId]) -> Candidate<'_> {
        Candidate {
            neighbor: AsId(neighbor),
            rel,
            path,
        }
    }

    #[test]
    fn customer_beats_shorter_peer_and_provider() {
        let long_cust: Vec<AsId> = vec![AsId(1), AsId(2), AsId(3), AsId(4)];
        let short_peer: Vec<AsId> = vec![AsId(5)];
        let short_prov: Vec<AsId> = vec![AsId(6)];
        let cands = vec![
            cand(5, Relationship::Peer, &short_peer),
            cand(1, Relationship::Customer, &long_cust),
            cand(6, Relationship::Provider, &short_prov),
        ];
        assert_eq!(select_best(&cands), Some(1), "prefer-customer violated");
    }

    #[test]
    fn peer_beats_provider() {
        let p1: Vec<AsId> = vec![AsId(5), AsId(9)];
        let p2: Vec<AsId> = vec![AsId(6)];
        let cands = vec![
            cand(6, Relationship::Provider, &p2),
            cand(5, Relationship::Peer, &p1),
        ];
        assert_eq!(select_best(&cands), Some(1));
    }

    #[test]
    fn shorter_path_wins_within_same_pref_class() {
        let short: Vec<AsId> = vec![AsId(1), AsId(9)];
        let long: Vec<AsId> = vec![AsId(2), AsId(8), AsId(9)];
        let cands = vec![
            cand(2, Relationship::Customer, &long),
            cand(1, Relationship::Customer, &short),
        ];
        assert_eq!(select_best(&cands), Some(1));
    }

    #[test]
    fn hash_tiebreak_is_deterministic_and_consistent() {
        let a: Vec<AsId> = vec![AsId(10), AsId(9)];
        let b: Vec<AsId> = vec![AsId(20), AsId(9)];
        let cands = vec![
            cand(10, Relationship::Peer, &a),
            cand(20, Relationship::Peer, &b),
        ];
        let winner = select_best(&cands).unwrap();
        // Recomputing gives the same winner.
        assert_eq!(select_best(&cands), Some(winner));
        // The winner is the one with the smaller next-hop hash.
        let expect = if hash64(10) < hash64(20) { 0 } else { 1 };
        assert_eq!(winner, expect);
        // And order of presentation does not matter.
        let flipped = vec![cands[1].clone(), cands[0].clone()];
        assert_eq!(select_best(&flipped), Some(1 - winner));
    }

    #[test]
    fn empty_candidate_set_has_no_best() {
        assert_eq!(select_best(&[]), None);
    }

    #[test]
    fn single_candidate_wins() {
        let p: Vec<AsId> = vec![AsId(1)];
        assert_eq!(select_best(&[cand(1, Relationship::Provider, &p)]), Some(0));
    }

    #[test]
    fn packed_key_orders_exactly_like_preference_key() {
        // A grid of candidates crossing every field of the key: both
        // relations, several path lengths, and neighbor ids chosen to
        // exercise the hash and raw-id tiebreaks.
        let paths: Vec<Vec<AsId>> = (1..=5)
            .map(|l| (1..=l).map(AsId).collect())
            .collect();
        let rels = [Relationship::Customer, Relationship::Peer, Relationship::Provider];
        let mut cands = Vec::new();
        for rel in rels {
            for path in &paths {
                for id in [1u32, 2, 7, 100, 65000] {
                    cands.push(cand(id, rel, path));
                }
            }
        }
        for a in &cands {
            for b in &cands {
                assert_eq!(
                    packed_key(a).cmp(&packed_key(b)),
                    preference_key(a).cmp(&preference_key(b)),
                    "packed order diverges for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn preference_key_is_antisymmetric_and_total() {
        // Distinct neighbors always produce distinct keys (the raw-id
        // fallback guarantees it), so the decision is a strict total
        // order within one candidate set.
        let p: Vec<AsId> = vec![AsId(1)];
        let q: Vec<AsId> = vec![AsId(2)];
        let a = cand(1, Relationship::Peer, &p);
        let b = cand(2, Relationship::Peer, &q);
        assert_ne!(preference_key(&a), preference_key(&b));
    }
}
