//! The per-AS BGP speaker: the node model of the paper's Fig. 2.
//!
//! A [`BgpNode`] holds, per neighbor session, an Adj-RIB-in slot and an
//! MRAI-limited output queue ([`crate::mrai::OutQueue`]); per prefix, the
//! selected best route (Loc-RIB). It is a **pure protocol machine**: every
//! entry point returns the transmissions and timer requests it produced as
//! plain data ([`Actions`]), and the caller (the event-driven simulator in
//! `bgpscale-core`, or a unit test) decides when those happen. The node
//! never sees the clock.
//!
//! Pipeline per received update (Fig. 2): update the neighbor's Adj-RIB-in
//! → re-run the decision process → if the best route changed, run the
//! export filter for every neighbor and submit the new intent (announce /
//! withdraw / nothing) to that neighbor's output queue.
//!
//! ## Memory layout
//!
//! All per-node state is arena-backed (see [`crate::arena`]): sessions
//! and the AS-id → slot lookup live in a [`SessionSlab`] shared by every
//! node of a topology through an `Arc`; per-prefix state lives in the
//! structure-of-arrays [`PrefixTable`]; damping history in the flat
//! [`DampTable`]. A standalone node built with [`BgpNode::new`] owns a
//! private one-node slab; the simulator builds one topology-wide slab and
//! hands every node a clone of the `Arc` via [`BgpNode::from_slab`].

use std::sync::Arc;

use bgpscale_obs::Provenance;
use bgpscale_simkernel::SimTime;
use bgpscale_topology::{AsId, Relationship};

use crate::arena::{DampTable, PrefixTable, SessionSlab, SELF_SLOT};
use crate::config::{MraiMode, MraiScope};
use crate::decision::preference_key;
use crate::message::{AsPath, Prefix, Update, UpdateKind};
use crate::mrai::{OutQueue, Submit};
use crate::policy::{export_allowed, would_loop, RouteSource};
use crate::rfd::{FlapKind, RfdConfig};

/// One configured neighbor session.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    /// The neighbor AS.
    pub peer: AsId,
    /// Our relationship to the neighbor.
    pub rel: Relationship,
}

/// The transmissions and timer arm requests produced by one protocol step.
///
/// `sends` are messages to put on the wire immediately (the simulator adds
/// link latency); for every slot in `arm_timers` the caller must schedule
/// one MRAI expiry after a jittered MRAI interval and eventually call
/// [`BgpNode::mrai_expired`] for it.
#[derive(Clone, Debug, Default)]
pub struct Actions {
    /// `(neighbor slot, message)` pairs to transmit now.
    pub sends: Vec<(u32, Update)>,
    /// Slots whose MRAI timer must be armed now.
    pub arm_timers: Vec<u32>,
    /// Per-prefix MRAI timers to arm now (only populated under
    /// [`MraiScope::PerPrefix`]); the caller schedules one expiry per
    /// entry and eventually calls [`BgpNode::mrai_prefix_expired`].
    pub arm_prefix_timers: Vec<(u32, Prefix)>,
    /// Route-flap-damping reuse wake-ups to schedule: at the given time,
    /// call [`BgpNode::rfd_reuse`] for the (slot, prefix) pair.
    pub rfd_wakeups: Vec<(u32, Prefix, SimTime)>,
}

impl Actions {
    /// True if nothing needs to happen.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.arm_timers.is_empty()
            && self.arm_prefix_timers.is_empty()
            && self.rfd_wakeups.is_empty()
    }

    fn merge(&mut self, other: Actions) {
        self.sends.extend(other.sends);
        self.arm_timers.extend(other.arm_timers);
        self.arm_prefix_timers.extend(other.arm_prefix_timers);
        self.rfd_wakeups.extend(other.rfd_wakeups);
    }

    fn absorb(&mut self, slot: u32, submit: Submit, scope: MraiScope) {
        match submit {
            Submit::SendNow { update, arm_timer } => {
                if arm_timer {
                    match scope {
                        MraiScope::PerInterface => self.arm_timers.push(slot),
                        MraiScope::PerPrefix => {
                            self.arm_prefix_timers.push((slot, update.prefix));
                        }
                    }
                }
                self.sends.push((slot, update));
            }
            Submit::Queued | Submit::Suppressed => {}
        }
    }
}

/// How a decision re-run may be narrowed.
///
/// With damping off (the paper's configuration), a change confined to one
/// Adj-RIB-in slot cannot displace the incumbent best route without
/// beating it head-to-head — [`crate::decision::preference_key`] is a
/// strict total order — so the decision process runs in O(1) instead of
/// O(degree). `Full` rescans every slot: originations, RFD eligibility
/// changes, and any change to the incumbent's own slot.
#[derive(Clone, Copy, Debug)]
enum Reeval {
    /// Rescan every Adj-RIB-in slot.
    Full,
    /// Only this slot's Adj-RIB-in entry changed since the last run.
    SlotChanged(u32),
}

/// A BGP speaker for one AS.
#[derive(Clone, Debug)]
pub struct BgpNode {
    id: AsId,
    /// The topology-wide session arena; this node reads its own stripe.
    slab: Arc<SessionSlab>,
    /// This node's index into the slab's id spaces.
    slab_idx: u32,
    mode: MraiMode,
    /// Sender-side loop detection (§4.1). On by default; the ablation
    /// benches disable it to quantify how much churn it suppresses.
    sender_loop_check: bool,
    /// Per-prefix SoA state: Adj-RIB-in columns, origination flags and the
    /// Loc-RIB best, addressed by sorted prefix row.
    table: PrefixTable,
    out: Vec<OutQueue>,
    /// Per-slot session liveness. A down session receives no exports and
    /// contributes no routes; see [`BgpNode::session_down`].
    active: Vec<bool>,
    /// Route Flap Damping configuration; `None` disables damping (the
    /// paper's configuration).
    rfd: Option<RfdConfig>,
    /// Damping state per (slot, prefix); entries exist only for routes
    /// with flap history.
    damp: DampTable,
    /// Cost-model tallies (see [`NodeCostCounters`]); monotone over the
    /// node's lifetime, surviving [`BgpNode::reset_routing`] so
    /// phase-boundary snapshots can be diffed.
    costs: NodeCostCounters,
}

/// Monotone operation tallies for one BGP speaker, feeding the
/// workspace-wide deterministic cost model (`obs::costmodel`). Decision
/// and path-handling counts live on the node; Adj-RIB-out and MRAI
/// coalescing counts are summed over the per-session output queues by
/// [`BgpNode::cost_counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCostCounters {
    /// Decision-process runs (one per `reevaluate` of a prefix).
    pub decision_runs: u64,
    /// Candidate-route preference comparisons inside the decision process.
    pub route_comparisons: u64,
    /// AS-path reuses by refcount bump (`clone` of a built export path).
    pub path_intern_hits: u64,
    /// Fresh AS-path allocations (`prepended` builds a new array).
    pub path_intern_misses: u64,
    /// Adj-RIB-out mutations across all output queues.
    pub rib_out_writes: u64,
    /// MRAI-coalesced pending updates across all output queues.
    pub mrai_coalesced: u64,
}

impl BgpNode {
    /// Creates a standalone speaker with the given neighbor sessions,
    /// backed by a private one-node [`SessionSlab`].
    ///
    /// # Panics
    /// Panics if a neighbor appears twice or equals `id`.
    pub fn new(id: AsId, sessions: Vec<Session>, mode: MraiMode) -> Self {
        let slab = SessionSlab::for_single(id, sessions);
        Self::from_slab(id, slab, 0, mode)
    }

    /// Creates a speaker reading its sessions from stripe `slab_idx` of a
    /// shared [`SessionSlab`]. This is the simulator's constructor: one
    /// slab is built per topology and every node holds an `Arc` clone, so
    /// instantiating a node allocates no per-session lookup state.
    pub fn from_slab(id: AsId, slab: Arc<SessionSlab>, slab_idx: u32, mode: MraiMode) -> Self {
        let degree = slab.degree(slab_idx);
        BgpNode {
            id,
            table: PrefixTable::new(degree),
            out: (0..degree).map(|_| OutQueue::new()).collect(),
            active: vec![true; degree as usize],
            slab,
            slab_idx,
            mode,
            sender_loop_check: true,
            rfd: None,
            damp: DampTable::new(),
            costs: NodeCostCounters::default(),
        }
    }

    /// Cost-model tallies for this speaker: the node's own decision/path
    /// counters plus the Adj-RIB-out and coalescing counts summed over its
    /// output queues. Monotone — never reset by routing-state clears.
    pub fn cost_counters(&self) -> NodeCostCounters {
        let mut c = self.costs;
        for q in &self.out {
            c.rib_out_writes += q.rib_out_writes();
            c.mrai_coalesced += q.coalesced();
        }
        c
    }

    /// Enables Route Flap Damping with the given parameters, or disables
    /// it with `None` (the default; also the paper's configuration).
    ///
    /// # Panics
    /// Panics if the configuration fails [`RfdConfig::check`].
    pub fn set_rfd(&mut self, rfd: Option<RfdConfig>) {
        if let Some(cfg) = &rfd {
            cfg.check().unwrap_or_else(|e| panic!("invalid RFD config: {e}"));
        }
        // The sorted candidate order is only exact relative to one
        // eligibility regime; flipping damping on or off invalidates it
        // wholesale (rows rebuild on their next undamped decision run).
        self.table.invalidate_orders();
        self.rfd = rfd;
    }

    /// True if the route from `slot` for `prefix` is currently damped.
    pub fn is_suppressed(&self, slot: u32, prefix: Prefix) -> bool {
        self.damp.get(slot, prefix).is_some_and(|s| s.suppressed)
    }

    /// Switches the MRAI timer granularity (default:
    /// [`MraiScope::PerInterface`], the paper's model). Must be called
    /// before any routing state exists — the output queues are rebuilt.
    ///
    /// # Panics
    /// Panics if the node already holds routing state.
    pub fn set_mrai_scope(&mut self, scope: MraiScope) {
        assert!(
            self.table.is_empty(),
            "{}: cannot change MRAI scope with live routing state",
            self.id
        );
        self.out = (0..self.active.len())
            .map(|_| OutQueue::with_scope(scope))
            .collect();
    }

    /// The MRAI timer granularity of this speaker.
    pub fn mrai_scope(&self) -> MraiScope {
        self.out
            .first()
            .map_or(MraiScope::PerInterface, |q| q.scope())
    }

    /// Enables or disables sender-side loop detection (default: enabled).
    /// With it disabled, routes are exported even to neighbors on their
    /// own AS path; the receiver discards them (treating the looping
    /// announcement as a withdrawal, per RFC 4271's eligibility rule).
    pub fn set_sender_side_loop_detection(&mut self, enabled: bool) {
        self.sender_loop_check = enabled;
    }

    /// This node's AS id.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// The configured sessions, in slot order.
    pub fn sessions(&self) -> &[Session] {
        self.slab.sessions(self.slab_idx)
    }

    /// The shared session slab this node reads its stripe from.
    pub fn slab(&self) -> &Arc<SessionSlab> {
        &self.slab
    }

    /// Deterministic estimate of this node's arena-resident bytes (prefix
    /// table plus damping table; the shared session slab is counted once
    /// by its owner, not per node).
    pub fn arena_bytes(&self) -> u64 {
        self.table.arena_bytes() + self.damp.arena_bytes()
    }

    /// The slot of neighbor `peer`, if it is one.
    pub fn slot_of(&self, peer: AsId) -> Option<u32> {
        self.slab.slot_of(self.slab_idx, peer)
    }

    /// The MRAI withdrawal mode this speaker runs.
    pub fn mode(&self) -> MraiMode {
        self.mode
    }

    /// The best route for `prefix`: `None` if unreachable, otherwise the
    /// next-hop neighbor (`None` when self-originated) and the AS path as
    /// learned (the next hop is its first element).
    pub fn best_route(&self, prefix: Prefix) -> Option<(Option<AsId>, &AsPath)> {
        let row = self.table.row(prefix)?;
        let (slot, path) = self.table.best(row)?;
        if slot == SELF_SLOT {
            Some((None, path))
        } else {
            Some((Some(self.sessions()[slot as usize].peer), path))
        }
    }

    /// The path we last transmitted to `slot` for `prefix` (Adj-RIB-out).
    pub fn advertised(&self, slot: u32, prefix: Prefix) -> Option<&AsPath> {
        self.out[slot as usize].advertised(prefix)
    }

    /// True while `slot`'s MRAI timer is armed.
    // detflow::allow(panic-surface, reason = "slot is a session index minted by this node's own slab lookup; out holds one queue per session by construction")
    pub fn timer_armed(&self, slot: u32) -> bool {
        self.out[slot as usize].timer_armed()
    }

    /// Number of armed MRAI timers on `slot`'s output queue (each one
    /// backed by exactly one outstanding expiry event). The simulator uses
    /// this to keep its timer-occupancy accounting exact across session
    /// resets.
    pub fn armed_timer_count(&self, slot: u32) -> u32 {
        self.out[slot as usize].armed_count() as u32
    }

    /// Starts originating `prefix`.
    pub fn originate(&mut self, prefix: Prefix) -> Actions {
        self.originate_caused(prefix, &Provenance::none())
    }

    /// [`BgpNode::originate`] with a provenance stamp for the resulting
    /// exports. The unstamped entry points delegate here with
    /// [`Provenance::none`]; stamping never changes routing behavior.
    pub fn originate_caused(&mut self, prefix: Prefix, cause: &Provenance) -> Actions {
        let row = self.table.row_or_insert(prefix);
        self.table.set_originated(row, true);
        self.reevaluate(row, prefix, cause, Reeval::Full)
    }

    /// Stops originating `prefix` (the "DOWN" half of a C-event).
    pub fn withdraw_origin(&mut self, prefix: Prefix) -> Actions {
        self.withdraw_origin_caused(prefix, &Provenance::none())
    }

    /// [`BgpNode::withdraw_origin`] with a provenance stamp.
    pub fn withdraw_origin_caused(&mut self, prefix: Prefix, cause: &Provenance) -> Actions {
        let row = self.table.row_or_insert(prefix);
        self.table.set_originated(row, false);
        self.reevaluate(row, prefix, cause, Reeval::Full)
    }

    /// Processes one UPDATE received from `from`, with damping disabled
    /// or time-independent. Equivalent to
    /// [`BgpNode::handle_update_at`]`(from, update, SimTime::ZERO)`; use
    /// the `_at` form when Route Flap Damping is enabled (its penalties
    /// decay in simulated time).
    ///
    /// # Panics
    /// Panics if `from` is not a configured neighbor.
    pub fn handle_update(&mut self, from: AsId, update: Update) -> Actions {
        self.handle_update_at(from, update, SimTime::ZERO)
    }

    /// Processes one UPDATE received from `from` at simulated time `now`.
    ///
    /// # Panics
    /// Panics if `from` is not a configured neighbor.
    // detflow::allow(panic-surface, reason = "non-neighbor senders are a documented panic (# Panics above); every arena access uses the slab-minted slot and the row created earlier in this fn")
    pub fn handle_update_at(&mut self, from: AsId, update: Update, now: SimTime) -> Actions {
        let slot = self
            .slab
            .slot_of(self.slab_idx, from)
            .unwrap_or_else(|| panic!("{}: update from non-neighbor {from}", self.id));
        let prefix = update.prefix;
        // Exports triggered by this message are one causal hop further from
        // the root cause than the message itself. Computed before the match
        // below consumes the update.
        let cause = update.provenance.child();
        let row = self.table.row_or_insert(prefix);

        // Receiver-side loop detection: a path containing our own AS is
        // ineligible (RFC 4271) and supersedes whatever the neighbor
        // previously announced — treat it as a withdrawal. Unreachable
        // while senders filter, but load-bearing when sender-side
        // detection is ablated off.
        let incoming: Option<AsPath> = match update.kind {
            UpdateKind::Announce(path) if !path.contains(&self.id) => Some(path),
            _ => None,
        };

        // Route Flap Damping: charge the figure of merit before
        // installing. Initial advertisements are free; withdrawals,
        // re-advertisements and path changes are flaps (RFC 2439).
        let mut wakeups = Vec::new();
        if let Some(cfg) = self.rfd.clone() {
            let prev = self.table.rib_in_cell(row, slot);
            let flap = match (prev, &incoming) {
                (Some(_), None) => Some(FlapKind::Withdrawal),
                (Some(old), Some(new)) if *old != *new => Some(FlapKind::AttributeChange),
                (None, Some(_)) if self.damp.get(slot, prefix).is_some() => {
                    Some(FlapKind::Readvertisement)
                }
                _ => None,
            };
            if let Some(kind) = flap {
                let state = self.damp.get_or_insert(slot, prefix);
                if state.charge(kind, now, &cfg) {
                    if let Some(at) = state.reuse_time(&cfg) {
                        wakeups.push((slot, prefix, at));
                    }
                }
            }
        }

        self.table.set_rib_in(row, slot, incoming);

        let mut actions = self.reevaluate(row, prefix, &cause, Reeval::SlotChanged(slot));
        actions.rfd_wakeups.extend(wakeups);
        actions
    }

    /// Handles a Route Flap Damping reuse wake-up for `(slot, prefix)`:
    /// if the decayed penalty has fallen below the reuse threshold, the
    /// damped route becomes eligible again and the decision process
    /// re-runs. Early wake-ups (obsoleted by later flaps that extended
    /// suppression) are no-ops — the later flap scheduled its own wake-up.
    pub fn rfd_reuse(&mut self, slot: u32, prefix: Prefix, now: SimTime) -> Actions {
        self.rfd_reuse_caused(slot, prefix, now, &Provenance::none())
    }

    /// [`BgpNode::rfd_reuse`] with a provenance stamp.
    pub fn rfd_reuse_caused(
        &mut self,
        slot: u32,
        prefix: Prefix,
        now: SimTime,
        cause: &Provenance,
    ) -> Actions {
        let Some(cfg) = self.rfd.clone() else {
            return Actions::default();
        };
        let Some(state) = self.damp.get_mut(slot, prefix) else {
            return Actions::default();
        };
        if !state.maybe_reuse(now, &cfg) {
            return Actions::default();
        }
        match self.table.row(prefix) {
            // Eligibility changed, so the incumbent may now lose: full run.
            Some(row) => self.reevaluate(row, prefix, cause, Reeval::Full),
            None => Actions::default(),
        }
    }

    /// True while the session at `slot` is established.
    pub fn session_active(&self, slot: u32) -> bool {
        self.active[slot as usize]
    }

    /// Tears down the session at `slot` (link failure / session reset —
    /// the "L-event" extension of the paper's future work).
    ///
    /// All routes learned from the neighbor are invalidated at once (a
    /// BGP session drop implicitly withdraws the whole Adj-RIB-in), the
    /// output queue is cleared (the neighbor has likewise discarded our
    /// routes), and the decision process re-runs for every affected
    /// prefix; the returned actions notify the *other* neighbors.
    ///
    /// The caller must invalidate any outstanding MRAI expiry for this
    /// slot (the simulator tracks a per-slot epoch).
    ///
    /// # Panics
    /// Panics if the session is already down.
    pub fn session_down(&mut self, slot: u32) -> Actions {
        self.session_down_caused(slot, &Provenance::none())
    }

    /// [`BgpNode::session_down`] with a provenance stamp.
    pub fn session_down_caused(&mut self, slot: u32, cause: &Provenance) -> Actions {
        assert!(self.active[slot as usize], "{}: session {slot} already down", self.id);
        self.active[slot as usize] = false;
        self.out[slot as usize].force_reset();
        self.damp.clear_slot(slot);
        let mut actions = Actions::default();
        // Rows are only ever appended by row_or_insert, never removed, so
        // the indices collected here stay valid across the reevaluations.
        let affected: Vec<(usize, Prefix)> = self
            .table
            .iter_rows()
            .filter(|&(row, _)| self.table.rib_in_cell(row, slot).is_some())
            .collect();
        for (row, prefix) in affected {
            self.table.set_rib_in(row, slot, None);
            let a = self.reevaluate(row, prefix, cause, Reeval::SlotChanged(slot));
            actions.merge(a);
        }
        actions
    }

    /// Re-establishes the session at `slot` and re-advertises the current
    /// table to the neighbor (the initial full RIB exchange of a fresh
    /// BGP session), subject to the usual export filters. The neighbor's
    /// routes arrive through its own `session_up`.
    ///
    /// # Panics
    /// Panics if the session is already up.
    pub fn session_up(&mut self, slot: u32) -> Actions {
        self.session_up_caused(slot, &Provenance::none())
    }

    /// [`BgpNode::session_up`] with a provenance stamp for the replayed
    /// table.
    pub fn session_up_caused(&mut self, slot: u32, cause: &Provenance) -> Actions {
        assert!(!self.active[slot as usize], "{}: session {slot} already up", self.id);
        self.active[slot as usize] = true;
        debug_assert!(!self.out[slot as usize].timer_armed());
        let mut actions = Actions::default();
        let session = self.sessions()[slot as usize];
        let stamp = cause.with_rel(session.rel);
        // Iterating rows walks prefixes in sorted order — the same
        // deterministic replay order the BTreeMap-backed table produced.
        let snapshot: Vec<(Prefix, u32, AsPath)> = self
            .table
            .iter_rows()
            .filter_map(|(row, p)| self.table.best(row).map(|(s, path)| (p, s, path.clone())))
            .collect();
        for (prefix, best_slot, path) in snapshot {
            let source = if best_slot == SELF_SLOT {
                RouteSource::SelfOriginated
            } else {
                RouteSource::Learned(self.sessions()[best_slot as usize].rel)
            };
            if !export_allowed(source, session.rel)
                || (self.sender_loop_check && would_loop(&path, session.peer))
            {
                continue;
            }
            let export_path = AsPath::prepended(self.id, &path);
            self.costs.path_intern_misses += 1;
            // The initial table exchange is not rate-limited; MRAI governs
            // subsequent updates only.
            if let Some(update) = self.out[slot as usize].send_unlimited(prefix, export_path, &stamp)
            {
                actions.sends.push((slot, update));
            }
        }
        if !actions.sends.is_empty() {
            match self.mrai_scope() {
                MraiScope::PerInterface => {
                    self.out[slot as usize].arm_timer(None);
                    actions.arm_timers.push(slot);
                }
                MraiScope::PerPrefix => {
                    let prefixes: Vec<Prefix> =
                        actions.sends.iter().map(|(_, u)| u.prefix).collect();
                    for p in prefixes {
                        self.out[slot as usize].arm_timer(Some(p));
                        actions.arm_prefix_timers.push((slot, p));
                    }
                }
            }
        }
        actions
    }

    /// Handles a per-interface MRAI expiry for `slot`, returning the
    /// flushed transmissions. The caller re-arms iff `arm_timers` is
    /// non-empty.
    // detflow::allow(panic-surface, reason = "slot comes from this node's own armed-timer bookkeeping; out holds one queue per session by construction")
    pub fn mrai_expired(&mut self, slot: u32) -> Actions {
        let (updates, rearm) = self.out[slot as usize].flush(None);
        let mut actions = Actions::default();
        for u in updates {
            actions.sends.push((slot, u));
        }
        if rearm {
            actions.arm_timers.push(slot);
        }
        actions
    }

    /// Handles a per-prefix MRAI expiry for `(slot, prefix)` (only under
    /// [`MraiScope::PerPrefix`]). The caller re-arms iff
    /// `arm_prefix_timers` is non-empty.
    // detflow::allow(panic-surface, reason = "slot comes from this node's own armed-timer bookkeeping; out holds one queue per session by construction")
    pub fn mrai_prefix_expired(&mut self, slot: u32, prefix: Prefix) -> Actions {
        let (updates, rearm) = self.out[slot as usize].flush(Some(prefix));
        let mut actions = Actions::default();
        for u in updates {
            actions.sends.push((slot, u));
        }
        if rearm {
            actions.arm_prefix_timers.push((slot, prefix));
        }
        actions
    }

    /// Clears all routing state (RIBs, output queues), keeping the session
    /// configuration. Used between C-events.
    ///
    /// # Panics
    /// Panics if any MRAI timer is still armed (see
    /// [`crate::mrai::OutQueue::reset`]).
    pub fn reset_routing(&mut self) {
        self.table.clear();
        self.damp.clear();
        for q in &mut self.out {
            q.reset();
        }
    }

    /// Rebuilds the row's sorted candidate order from scratch — one
    /// binary-search insertion per held route, every key comparison
    /// counted. Only needed after the order was invalidated (damping
    /// reconfiguration, or a row maintained while damping was on).
    // detflow::allow(panic-surface, reason = "row is a live row index and the rib_in stripe enumerates exactly this node's session slots, which index the slab stripe by construction")
    fn rebuild_order(&mut self, row: usize) {
        self.table.order_clear_row(row);
        let sessions = self.slab.sessions(self.slab_idx);
        let keyed: Vec<(u32, u128)> = self
            .table
            .rib_in(row)
            .iter()
            .enumerate()
            .filter_map(|(i, entry)| {
                entry.as_ref().map(|path| {
                    let key = crate::decision::packed_key(&crate::decision::Candidate {
                        neighbor: sessions[i].peer,
                        rel: sessions[i].rel,
                        path: path.as_slice(),
                    });
                    (i as u32, key)
                })
            })
            .collect();
        for (slot, key) in keyed {
            self.costs.route_comparisons += self.table.order_insert(row, slot, key);
        }
        self.table.set_order_valid(row, true);
    }

    /// Re-runs the decision process for row `row` (holding `prefix`); on a
    /// best-route change, runs the export filters and submits new intents
    /// to every output queue. Each submission is stamped with `cause` plus
    /// the sending edge's Gao–Rexford relation, so attribution survives
    /// MRAI coalescing downstream.
    ///
    /// `hint` narrows the decision (see [`Reeval`]); it is only honored
    /// with damping off — RFD changes route *eligibility* independently of
    /// the Adj-RIB-in, invalidating the single-slot reasoning.
    // detflow::allow(panic-surface, reason = "every caller resolves the prefix to a live row before delegating here; slot indices enumerate the slab stripe, and rib_in/out/active are sized to the node's degree at construction")
    fn reevaluate(&mut self, row: usize, prefix: Prefix, cause: &Provenance, hint: Reeval) -> Actions {
        self.costs.decision_runs += 1;

        // Keep the row's sorted candidate order exact *before* anything
        // else — including the self-origination early exit below — so the
        // column never goes stale while a row is originated. Only the
        // hinted slot's Adj-RIB-in cell changed: a withdrawal is a
        // positional remove (zero preference comparisons) and an
        // announcement one binary-search insert under the cached packed
        // key. Damped runs skip maintenance and mark the row stale
        // instead: suppression changes route eligibility without touching
        // the Adj-RIB-in, so the order cannot be trusted again until a
        // counted rebuild.
        if let Reeval::SlotChanged(s) = hint {
            if self.rfd.is_some() {
                self.table.set_order_valid(row, false);
            } else if self.table.order_valid(row) {
                let sessions = self.slab.sessions(self.slab_idx);
                let key = self.table.rib_in_cell(row, s).as_ref().map(|path| {
                    crate::decision::packed_key(&crate::decision::Candidate {
                        neighbor: sessions[s as usize].peer,
                        rel: sessions[s as usize].rel,
                        path: path.as_slice(),
                    })
                });
                self.costs.route_comparisons += self.table.order_update(row, s, key);
            }
        }

        // Decision process.
        let new_best: Option<(u32, AsPath)> = 'best: {
            if self.table.originated(row) {
                break 'best Some((SELF_SLOT, AsPath::new()));
            }
            if self.rfd.is_none() {
                if !self.table.order_valid(row) {
                    self.rebuild_order(row);
                }
                break 'best self.table.order_best(row).map(|slot| {
                    let path = self
                        .table
                        .rib_in_cell(row, slot)
                        .clone()
                        .expect("ordered slot holds a route");
                    (slot, path)
                });
            }
            // Damped rescan: suppressed routes are stored but ineligible
            // (RFC 2439), so the sorted order is no shortcut here — scan
            // every eligible candidate under the full preference order.
            let sessions = self.slab.sessions(self.slab_idx);
            let mut winner: Option<(u32, &AsPath)> = None;
            for (i, entry) in self.table.rib_in(row).iter().enumerate() {
                let Some(path) = entry else { continue };
                if self
                    .damp
                    .get(i as u32, prefix)
                    .is_some_and(|d| d.suppressed)
                {
                    continue;
                }
                let cand = crate::decision::Candidate {
                    neighbor: sessions[i].peer,
                    rel: sessions[i].rel,
                    path: path.as_slice(),
                };
                let better = match winner {
                    None => true,
                    Some((wslot, wpath)) => {
                        let wcand = crate::decision::Candidate {
                            neighbor: sessions[wslot as usize].peer,
                            rel: sessions[wslot as usize].rel,
                            path: wpath.as_slice(),
                        };
                        self.costs.route_comparisons += 1;
                        preference_key(&cand) > preference_key(&wcand)
                    }
                };
                if better {
                    winner = Some((i as u32, path));
                }
            }
            winner.map(|(slot, path)| (slot, path.clone()))
        };

        let unchanged = match (self.table.best(row), &new_best) {
            (None, None) => true,
            (Some((s, p)), Some((ns, np))) => s == *ns && p == np,
            _ => false,
        };
        if unchanged {
            return Actions::default();
        }
        self.table.set_best(row, new_best.clone());

        // Export phase.
        let mut actions = Actions::default();
        match new_best {
            None => {
                for slot in 0..self.active.len() as u32 {
                    if !self.active[slot as usize] {
                        continue;
                    }
                    let session = self.slab.sessions(self.slab_idx)[slot as usize];
                    let scope = self.out[slot as usize].scope();
                    let submit = self.out[slot as usize].submit(
                        prefix,
                        None,
                        self.mode,
                        &cause.with_rel(session.rel),
                    );
                    actions.absorb(slot, submit, scope);
                }
            }
            Some((best_slot, best_path)) => {
                let sessions = self.slab.sessions(self.slab_idx);
                let source = if best_slot == SELF_SLOT {
                    RouteSource::SelfOriginated
                } else {
                    RouteSource::Learned(sessions[best_slot as usize].rel)
                };
                // The exported path: ourselves prepended to the best path.
                // Built once; every queue below shares it by refcount, so
                // exporting to k neighbors is k refcount bumps.
                let export_path = AsPath::prepended(self.id, &best_path);
                self.costs.path_intern_misses += 1;
                for slot in 0..sessions.len() as u32 {
                    if !self.active[slot as usize] {
                        continue;
                    }
                    let session = sessions[slot as usize];
                    // The Gao–Rexford filter plus sender-side loop
                    // detection (the best path necessarily contains the
                    // neighbor it was learned from, so this also prevents
                    // echoing a route back to its sender).
                    let intent = if export_allowed(source, session.rel)
                        && !(self.sender_loop_check && would_loop(&best_path, session.peer))
                    {
                        self.costs.path_intern_hits += 1;
                        Some(export_path.clone())
                    } else {
                        None
                    };
                    let scope = self.out[slot as usize].scope();
                    let submit = self.out[slot as usize].submit(
                        prefix,
                        intent,
                        self.mode,
                        &cause.with_rel(session.rel),
                    );
                    actions.absorb(slot, submit, scope);
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Prefix = Prefix(1);

    fn session(peer: u32, rel: Relationship) -> Session {
        Session {
            peer: AsId(peer),
            rel,
        }
    }

    /// A node AS0 with a customer AS1, a peer AS2, and a provider AS3.
    fn node() -> BgpNode {
        BgpNode::new(
            AsId(0),
            vec![
                session(1, Relationship::Customer),
                session(2, Relationship::Peer),
                session(3, Relationship::Provider),
            ],
            MraiMode::NoWrate,
        )
    }

    fn sends_to(actions: &Actions) -> Vec<u32> {
        actions.sends.iter().map(|(s, _)| *s).collect()
    }

    #[test]
    fn origination_announces_to_everyone() {
        let mut n = node();
        let a = n.originate(P);
        assert_eq!(sends_to(&a), vec![0, 1, 2]);
        assert_eq!(a.arm_timers, vec![0, 1, 2]);
        for (_, u) in &a.sends {
            assert_eq!(u.kind.path(), Some(&AsPath::from(vec![AsId(0)])), "path is just the origin");
        }
        assert_eq!(n.best_route(P), Some((None, &AsPath::new())));
    }

    #[test]
    fn customer_route_exports_to_everyone_else() {
        let mut n = node();
        let a = n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // Export to peer and provider (customer route), but not back to the
        // customer (loop detection: AS1 is on the path).
        assert_eq!(sends_to(&a), vec![1, 2]);
        let (_, u) = &a.sends[0];
        assert_eq!(u.kind.path(), Some(&AsPath::from(vec![AsId(0), AsId(1), AsId(9)])));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
    }

    #[test]
    fn provider_route_exports_only_to_customers() {
        let mut n = node();
        let a = n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        assert_eq!(sends_to(&a), vec![0], "only the customer hears about it");
    }

    #[test]
    fn peer_route_exports_only_to_customers() {
        let mut n = node();
        let a = n.handle_update(AsId(2), Update::announce(P, vec![AsId(2), AsId(9)]));
        assert_eq!(sends_to(&a), vec![0]);
    }

    #[test]
    fn better_route_triggers_reexport_with_new_path() {
        let mut n = node();
        // Provider route first: exported to customer only.
        n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        // Customer route arrives: better (prefer-customer). Peers and
        // providers hear the new path immediately (their timers are idle).
        // The customer itself cannot be given its own route back (loop
        // detection) — instead the stale provider route we advertised to it
        // is withdrawn, immediately under NO-WRATE.
        let a = n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(7), AsId(9)]));
        assert_eq!(sends_to(&a), vec![0, 1, 2]);
        assert!(a.sends[0].1.kind.is_withdraw(), "stale route to customer revoked");
        assert_eq!(
            a.sends[1].1,
            Update::announce(P, vec![AsId(0), AsId(1), AsId(7), AsId(9)])
        );
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
        // Slot 0's timer (armed by the earlier provider-route export) has
        // nothing pending at expiry and goes idle.
        let f = n.mrai_expired(0);
        assert!(f.sends.is_empty());
        assert!(f.arm_timers.is_empty());
    }

    #[test]
    fn worse_route_does_not_displace_best() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // A provider route arrives; best (customer) unchanged → no exports.
        let a = n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        assert!(a.is_empty());
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
    }

    #[test]
    fn withdrawal_falls_back_to_alternate_route() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        // Customer withdraws; best falls back to the provider route, which
        // may only be exported to customers. Slot 0's timer is idle (the
        // customer was never sent anything — loop detection), so the new
        // announcement goes out at once; slots 1 and 2, which previously
        // got the customer route, receive withdrawals immediately
        // (NO-WRATE).
        let a = n.handle_update(AsId(1), Update::withdraw(P));
        let withdraws: Vec<u32> = a
            .sends
            .iter()
            .filter(|(_, u)| u.kind.is_withdraw())
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(withdraws, vec![1, 2]);
        let announces: Vec<u32> = a
            .sends
            .iter()
            .filter(|(_, u)| u.kind.is_announce())
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(announces, vec![0], "customer hears the fallback route");
        assert_eq!(a.arm_timers, vec![0], "only the announcement arms a timer");
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(3)));
        // Slot 0's timer expires with nothing pending.
        let f = n.mrai_expired(0);
        assert!(f.sends.is_empty());
    }

    #[test]
    fn total_loss_withdraws_from_everyone_reached() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        let a = n.handle_update(AsId(1), Update::withdraw(P));
        // No alternate: withdraw goes to the peers/providers that heard
        // the announcement. The customer never got it (loop), so no
        // withdrawal there.
        let withdraws: Vec<u32> = a.sends.iter().map(|(s, _)| *s).collect();
        assert_eq!(withdraws, vec![1, 2]);
        assert!(a.sends.iter().all(|(_, u)| u.kind.is_withdraw()));
        assert_eq!(n.best_route(P), None);
        // NO-WRATE: withdrawals did not arm timers.
        assert!(a.arm_timers.is_empty());
    }

    #[test]
    fn wrate_queues_withdrawals_behind_timer() {
        let mut n = BgpNode::new(
            AsId(0),
            vec![session(1, Relationship::Customer), session(2, Relationship::Peer)],
            MraiMode::Wrate,
        );
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // Announcement armed slot 1's timer; the withdrawal must queue.
        let a = n.handle_update(AsId(1), Update::withdraw(P));
        assert!(a.sends.is_empty(), "WRATE withdrawal must wait for MRAI");
        let f = n.mrai_expired(1);
        assert_eq!(f.sends.len(), 1);
        assert!(f.sends[0].1.kind.is_withdraw());
        assert_eq!(f.arm_timers, vec![1], "withdrawal re-arms under WRATE");
    }

    #[test]
    fn flap_within_mrai_window_is_absorbed() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // Withdraw + identical re-announce before any timer expires.
        let w = n.handle_update(AsId(1), Update::withdraw(P));
        assert_eq!(w.sends.len(), 2, "withdrawals go out immediately (NO-WRATE)");
        let r = n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // Timers on slots 1,2 are armed, so the re-announcements queue.
        assert!(r.sends.is_empty());
        let f1 = n.mrai_expired(1);
        assert_eq!(f1.sends.len(), 1);
        assert!(f1.sends[0].1.kind.is_announce());
    }

    #[test]
    fn self_origination_beats_any_learned_route() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        n.originate(P);
        assert_eq!(n.best_route(P), Some((None, &AsPath::new())));
        // Withdrawing the origin falls back to the learned route.
        n.withdraw_origin(P);
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
    }

    #[test]
    fn decision_prefers_shorter_path_among_customers() {
        let mut n = BgpNode::new(
            AsId(0),
            vec![
                session(1, Relationship::Customer),
                session(2, Relationship::Customer),
            ],
            MraiMode::NoWrate,
        );
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(8), AsId(9)]));
        n.handle_update(AsId(2), Update::announce(P, vec![AsId(2), AsId(9)]));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(2)));
    }

    #[test]
    fn looping_announcement_is_ignored() {
        let mut n = node();
        let a = n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(0), AsId(9)]));
        assert!(a.is_empty());
        assert_eq!(n.best_route(P), None);
    }

    #[test]
    fn reset_routing_clears_ribs_but_keeps_sessions() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        // Only slots 1 and 2 were armed (the customer route was exported
        // to the peer and provider; nothing went back to the customer).
        n.mrai_expired(1);
        n.mrai_expired(2);
        n.reset_routing();
        assert_eq!(n.best_route(P), None);
        assert_eq!(n.sessions().len(), 3);
        assert_eq!(n.advertised(1, P), None);
    }

    #[test]
    #[should_panic(expected = "update from non-neighbor")]
    fn update_from_stranger_panics() {
        let mut n = node();
        n.handle_update(AsId(42), Update::withdraw(P));
    }

    #[test]
    #[should_panic(expected = "duplicate session")]
    fn duplicate_sessions_rejected() {
        BgpNode::new(
            AsId(0),
            vec![session(1, Relationship::Peer), session(1, Relationship::Customer)],
            MraiMode::NoWrate,
        );
    }

    #[test]
    fn session_down_invalidates_learned_routes_and_notifies_others() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
        // The customer session drops: its route is gone, and the peers/
        // providers that heard the customer route get withdrawals.
        let a = n.session_down(0);
        assert!(!n.session_active(0));
        assert_eq!(n.best_route(P), None);
        let withdraws: Vec<u32> = a.sends.iter().map(|(s, _)| *s).collect();
        assert_eq!(withdraws, vec![1, 2]);
        assert!(a.sends.iter().all(|(_, u)| u.kind.is_withdraw()));
    }

    #[test]
    fn down_session_receives_no_exports() {
        let mut n = node();
        n.session_down(0);
        // A new best route arrives from the provider; normally the
        // customer (slot 0) would hear it, but the session is down.
        let a = n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        assert!(a.sends.iter().all(|(s, _)| *s != 0));
        assert_eq!(n.advertised(0, P), None);
    }

    #[test]
    fn session_up_replays_the_table() {
        let mut n = node();
        n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        n.originate(Prefix(7));
        // Drop and restore the customer session: on restore it must learn
        // both the provider-learned route and the originated prefix
        // (customers receive everything).
        n.session_down(0);
        let a = n.session_up(0);
        assert!(n.session_active(0));
        let mut prefixes: Vec<Prefix> = a.sends.iter().map(|(_, u)| u.prefix).collect();
        prefixes.sort();
        assert_eq!(prefixes, vec![P, Prefix(7)]);
        assert!(a.sends.iter().all(|(s, u)| *s == 0 && u.kind.is_announce()));
        // The full-table replay arms the MRAI timer once.
        assert_eq!(a.arm_timers, vec![0]);
    }

    #[test]
    fn session_up_respects_export_policy() {
        // A provider-learned route must not be replayed to a peer session
        // that comes back up.
        let mut n = node();
        n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        n.session_down(1); // peer
        let a = n.session_up(1);
        assert!(a.sends.is_empty(), "provider route leaked to peer on replay");
    }

    #[test]
    fn session_down_clears_output_queue_state() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        assert!(n.advertised(1, P).is_some());
        n.session_down(1);
        assert_eq!(n.advertised(1, P), None);
        assert!(!n.timer_armed(1));
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_session_down_panics() {
        let mut n = node();
        n.session_down(0);
        n.session_down(0);
    }

    #[test]
    fn rfd_suppresses_flapping_route_and_falls_back() {
        use crate::rfd::RfdConfig;
        use bgpscale_simkernel::{SimDuration, SimTime};
        let mut n = node();
        n.set_rfd(Some(RfdConfig::default()));
        // A stable alternate via the provider.
        n.handle_update_at(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]), SimTime::ZERO);
        // The customer route flaps: announce, withdraw, announce, withdraw…
        let mut t = SimTime::from_secs(1);
        for _ in 0..3 {
            n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), t);
            t += SimDuration::from_secs(1);
            n.handle_update_at(AsId(1), Update::withdraw(P), t);
            t += SimDuration::from_secs(1);
        }
        // Withdrawal(1000) ×3 + readvert(1000) ×2 ≫ suppress threshold.
        assert!(n.is_suppressed(0, P));
        // A further announcement installs the route but the decision
        // sticks with the stable provider route.
        n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), t);
        assert_eq!(
            n.best_route(P).unwrap().0,
            Some(AsId(3)),
            "damped customer route must not win despite higher local-pref"
        );
    }

    #[test]
    fn rfd_reuse_restores_eligibility() {
        use crate::rfd::RfdConfig;
        use bgpscale_simkernel::{SimDuration, SimTime};
        let mut n = node();
        n.set_rfd(Some(RfdConfig::default()));
        n.handle_update_at(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]), SimTime::ZERO);
        let mut t = SimTime::from_secs(1);
        let mut wake = None;
        for _ in 0..4 {
            n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), t);
            t += SimDuration::from_secs(1);
            let a = n.handle_update_at(AsId(1), Update::withdraw(P), t);
            if let Some(&(_, _, at)) = a.rfd_wakeups.last() {
                wake = Some(at);
            }
            t += SimDuration::from_secs(1);
        }
        // Final state: suppressed, route re-announced and stored.
        n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), t);
        assert!(n.is_suppressed(0, P));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(3)));
        // Too-early wake-up: still suppressed.
        let early = n.rfd_reuse(0, P, t + SimDuration::from_secs(60));
        assert!(early.is_empty());
        assert!(n.is_suppressed(0, P));
        // Well past the scheduled reuse time the customer route wins
        // again.
        let wake = wake.expect("a wake-up was scheduled") + SimDuration::from_secs(3600);
        n.rfd_reuse(0, P, wake);
        assert!(!n.is_suppressed(0, P));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
        // The re-selection's announcements queue behind the MRAI timers
        // armed during the flapping; flushing the peer slot reveals the
        // new best path on the wire.
        let f = n.mrai_expired(1);
        assert!(
            f.sends.iter().any(|(_, u)| u.kind.is_announce()),
            "re-selection must (eventually) announce the change"
        );
    }

    #[test]
    fn rfd_initial_advertisement_is_free() {
        use crate::rfd::RfdConfig;
        use bgpscale_simkernel::SimTime;
        let mut n = node();
        n.set_rfd(Some(RfdConfig::default()));
        n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), SimTime::ZERO);
        assert!(!n.is_suppressed(0, P));
        // Stable routes never accumulate penalty: identical re-announce
        // is a no-op, not a flap.
        n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), SimTime::ZERO);
        assert!(!n.is_suppressed(0, P));
        assert_eq!(n.best_route(P).unwrap().0, Some(AsId(1)));
    }

    #[test]
    fn rfd_disabled_means_no_suppression_ever() {
        use bgpscale_simkernel::SimTime;
        let mut n = node();
        for _ in 0..20 {
            n.handle_update_at(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]), SimTime::ZERO);
            n.handle_update_at(AsId(1), Update::withdraw(P), SimTime::ZERO);
        }
        assert!(!n.is_suppressed(0, P));
    }

    #[test]
    fn cost_counters_attribute_decision_and_path_work() {
        let mut n = node();
        let before = n.cost_counters();
        assert_eq!(before, NodeCostCounters::default());
        // One update → one decision run, a fresh export path, and a
        // refcount hit per session it is exported to (peer + provider).
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        let c = n.cost_counters();
        assert_eq!(c.decision_runs, 1);
        assert_eq!(c.path_intern_misses, 1);
        assert_eq!(c.path_intern_hits, 2);
        assert_eq!(c.rib_out_writes, 2, "announced to peer and provider");
        // A competing provider route triggers exactly one comparison:
        // the incremental decision challenges the incumbent head-to-head.
        n.handle_update(AsId(3), Update::announce(P, vec![AsId(3), AsId(9)]));
        let c2 = n.cost_counters();
        assert_eq!(c2.decision_runs, 2);
        assert_eq!(c2.route_comparisons, 1);
        // Counters survive a routing reset (monotone).
        n.mrai_expired(1);
        n.mrai_expired(2);
        n.reset_routing();
        assert_eq!(n.cost_counters().decision_runs, 2);
    }

    #[test]
    fn advertised_tracks_what_was_sent() {
        let mut n = node();
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        assert_eq!(
            n.advertised(1, P),
            Some(&AsPath::from(vec![AsId(0), AsId(1), AsId(9)]))
        );
        assert_eq!(n.advertised(0, P), None, "never sent back to learner");
        assert!(n.timer_armed(1));
        assert!(!n.timer_armed(0));
    }

    /// The Adj-RIB-out interning invariant: one best-route change builds
    /// the export path once, and every neighbor's Adj-RIB-out entry holds
    /// a refcount bump of that single allocation.
    #[test]
    fn export_to_many_neighbors_shares_one_path_allocation() {
        let mut n = BgpNode::new(
            AsId(0),
            vec![
                session(1, Relationship::Customer),
                session(2, Relationship::Peer),
                session(3, Relationship::Provider),
                session(4, Relationship::Peer),
            ],
            MraiMode::NoWrate,
        );
        n.handle_update(AsId(1), Update::announce(P, vec![AsId(1), AsId(9)]));
        let exported: Vec<&AsPath> = (1..4).filter_map(|s| n.advertised(s, P)).collect();
        assert_eq!(exported.len(), 3, "customer route reaches the other three");
        for path in &exported[1..] {
            assert!(
                AsPath::ptr_eq(exported[0], path),
                "Adj-RIB-out entries must share the export path's allocation"
            );
        }
    }

    #[test]
    fn nodes_share_one_session_slab() {
        let slab = SessionSlab::build(
            2,
            |i| AsId(i as u32),
            &[
                vec![session(1, Relationship::Peer)],
                vec![session(0, Relationship::Peer)],
            ],
        );
        let mut a = BgpNode::from_slab(AsId(0), slab.clone(), 0, MraiMode::NoWrate);
        let b = BgpNode::from_slab(AsId(1), slab.clone(), 1, MraiMode::NoWrate);
        assert!(Arc::ptr_eq(a.slab(), b.slab()), "one slab serves every node");
        assert_eq!(a.slot_of(AsId(1)), Some(0));
        assert_eq!(b.slot_of(AsId(0)), Some(0));
        assert_eq!(a.sessions().len(), 1);
        let acts = a.originate(P);
        assert_eq!(sends_to(&acts), vec![0]);
        assert!(a.arena_bytes() > 0, "prefix rows are accounted");
        assert_eq!(b.arena_bytes(), 0, "untouched node holds no prefix state");
    }

    /// The incremental (hint-narrowed) decision must be observationally
    /// identical to a brute-force rescan: drive one node through a long
    /// seeded announce/withdraw trace while mirroring the Adj-RIB-in in
    /// the test, and after every step recompute the best route from
    /// scratch and compare.
    #[test]
    fn incremental_decision_matches_a_brute_force_mirror() {
        use bgpscale_simkernel::{Rng, Xoshiro256StarStar};
        let sessions = vec![
            session(1, Relationship::Customer),
            session(2, Relationship::Customer),
            session(3, Relationship::Peer),
            session(4, Relationship::Provider),
            session(5, Relationship::Provider),
        ];
        let mut n = BgpNode::new(AsId(0), sessions.clone(), MraiMode::NoWrate);
        let mut mirror: Vec<Option<AsPath>> = vec![None; sessions.len()];
        let mut g = Xoshiro256StarStar::new(0xA11_0CA7);
        for _ in 0..400 {
            let slot = g.next_below(5) as usize;
            let peer = sessions[slot].peer;
            if g.next_below(3) == 0 {
                n.handle_update(peer, Update::withdraw(P));
                mirror[slot] = None;
            } else {
                let path = vec![peer, AsId(6 + g.next_below(4) as u32), AsId(9)];
                n.handle_update(peer, Update::announce(P, path.clone()));
                mirror[slot] = Some(AsPath::from(path));
            }
            let mut want: Option<(u32, &AsPath)> = None;
            for (i, entry) in mirror.iter().enumerate() {
                let Some(path) = entry else { continue };
                let cand = crate::decision::Candidate {
                    neighbor: sessions[i].peer,
                    rel: sessions[i].rel,
                    path: path.as_slice(),
                };
                let better = match want {
                    None => true,
                    Some((w, wp)) => {
                        let wcand = crate::decision::Candidate {
                            neighbor: sessions[w as usize].peer,
                            rel: sessions[w as usize].rel,
                            path: wp.as_slice(),
                        };
                        preference_key(&cand) > preference_key(&wcand)
                    }
                };
                if better {
                    want = Some((i as u32, path));
                }
            }
            let got = n.best_route(P).map(|(nh, p)| (nh, p.clone()));
            let want = want.map(|(s, p)| (Some(sessions[s as usize].peer), p.clone()));
            assert_eq!(got, want, "incremental decision diverged from rescan");
        }
    }
}
