//! BGP UPDATE messages.
//!
//! The simulator models the two UPDATE flavors that matter for churn
//! accounting: **announcements** (a reachable route with its AS path) and
//! **explicit withdrawals**. Every [`Update`] received by a node counts as
//! one unit of churn, exactly as in the paper's measurements.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use bgpscale_obs::Provenance;
use bgpscale_topology::AsId;

/// A routable destination. The paper studies single-prefix events, so a
/// prefix is an opaque identifier; library users announcing real address
/// blocks can maintain their own mapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix(pub u32);

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An AS path: the sequence of ASes a route has traversed, **nearest AS
/// first, origin last**. A node prepends its own id when exporting.
///
/// Interned behind an `Arc<[AsId]>`: once built, a path is immutable and
/// [`Clone`] is a reference-count bump. This matters on the per-update hot
/// path — a single best-route change fans the same export path out to every
/// neighbor queue, and each RIB install, Adj-RIB-out entry, and wire
/// message shares one allocation instead of copying the hop list.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AsPath(Arc<[AsId]>);

impl AsPath {
    /// The empty path (self-originated routes). Allocation-free: all empty
    /// paths share one static backing buffer.
    pub fn new() -> AsPath {
        static EMPTY: OnceLock<Arc<[AsId]>> = OnceLock::new();
        AsPath(EMPTY.get_or_init(|| Arc::from([])).clone())
    }

    /// Builds the export path `head · tail` (ourselves prepended to the
    /// best path) in a single pass.
    pub fn prepended(head: AsId, tail: &[AsId]) -> AsPath {
        let mut hops = Vec::with_capacity(tail.len() + 1);
        hops.push(head);
        hops.extend_from_slice(tail);
        AsPath(hops.into())
    }

    /// The hops as a slice (also available through [`Deref`]).
    pub fn as_slice(&self) -> &[AsId] {
        &self.0
    }

    /// True if both paths share one backing allocation (interned clones of
    /// the same build). Used by tests to pin the Adj-RIB-out interning
    /// invariant: exporting one best route to k neighbors must be k
    /// refcount bumps of a single `prepended` allocation, never k copies.
    pub fn ptr_eq(a: &AsPath, b: &AsPath) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for AsPath {
    fn default() -> Self {
        AsPath::new()
    }
}

impl Deref for AsPath {
    type Target = [AsId];

    fn deref(&self) -> &[AsId] {
        &self.0
    }
}

impl From<Vec<AsId>> for AsPath {
    fn from(hops: Vec<AsId>) -> AsPath {
        AsPath(hops.into())
    }
}

impl From<&[AsId]> for AsPath {
    fn from(hops: &[AsId]) -> AsPath {
        AsPath(hops.into())
    }
}

impl FromIterator<AsId> for AsPath {
    fn from_iter<I: IntoIterator<Item = AsId>>(iter: I) -> AsPath {
        AsPath(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a AsPath {
    type Item = &'a AsId;
    type IntoIter = std::slice::Iter<'a, AsId>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

/// The payload of an UPDATE message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UpdateKind {
    /// The sender announces reachability with the given AS path (the
    /// sender itself is the first path element).
    Announce(AsPath),
    /// The sender explicitly withdraws its previously announced route.
    Withdraw,
}

impl UpdateKind {
    /// True for announcements.
    pub fn is_announce(&self) -> bool {
        matches!(self, UpdateKind::Announce(_))
    }

    /// True for withdrawals.
    pub fn is_withdraw(&self) -> bool {
        matches!(self, UpdateKind::Withdraw)
    }

    /// The announced path, if any.
    pub fn path(&self) -> Option<&AsPath> {
        match self {
            UpdateKind::Announce(p) => Some(p),
            UpdateKind::Withdraw => None,
        }
    }
}

/// One UPDATE message concerning one prefix.
#[derive(Clone, Debug)]
pub struct Update {
    /// The prefix the message is about.
    pub prefix: Prefix,
    /// Announcement or withdrawal.
    pub kind: UpdateKind,
    /// Causal attribution stamp (telemetry metadata, see below). Cheap to
    /// clone: the root set is interned behind an `Arc`.
    pub provenance: Provenance,
}

/// Equality covers the wire content only (`prefix` + `kind`). The
/// provenance stamp is telemetry metadata — two updates that would be
/// byte-identical on the wire compare equal regardless of which root
/// cause produced them, so structural assertions in tests and the MRAI
/// no-op suppression logic are unaffected by stamping.
impl PartialEq for Update {
    fn eq(&self, other: &Update) -> bool {
        self.prefix == other.prefix && self.kind == other.kind
    }
}

impl Eq for Update {}

impl Update {
    /// Convenience constructor for an announcement. Accepts anything
    /// convertible to an [`AsPath`] (a `Vec<AsId>`, a slice, or an
    /// already-interned path, which is reused without copying). The
    /// update starts unstamped; use [`Update::stamped`] to attach
    /// provenance.
    pub fn announce(prefix: Prefix, path: impl Into<AsPath>) -> Update {
        Update {
            prefix,
            kind: UpdateKind::Announce(path.into()),
            provenance: Provenance::none(),
        }
    }

    /// Convenience constructor for a withdrawal (unstamped).
    pub fn withdraw(prefix: Prefix) -> Update {
        Update {
            prefix,
            kind: UpdateKind::Withdraw,
            provenance: Provenance::none(),
        }
    }

    /// Attaches a provenance stamp (builder style).
    pub fn stamped(mut self, provenance: Provenance) -> Update {
        self.provenance = provenance;
        self
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            UpdateKind::Announce(path) => {
                write!(f, "ANNOUNCE {} via ", self.prefix)?;
                let mut first = true;
                for hop in path {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{hop}")?;
                    first = false;
                }
                Ok(())
            }
            UpdateKind::Withdraw => write!(f, "WITHDRAW {}", self.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = Update::announce(Prefix(1), vec![AsId(2), AsId(3)]);
        assert!(a.kind.is_announce());
        assert!(!a.kind.is_withdraw());
        assert_eq!(a.kind.path(), Some(&AsPath::from(vec![AsId(2), AsId(3)])));
        let w = Update::withdraw(Prefix(1));
        assert!(w.kind.is_withdraw());
        assert_eq!(w.kind.path(), None);
    }

    #[test]
    fn path_clone_shares_the_backing_buffer() {
        let a = AsPath::from(vec![AsId(1), AsId(2)]);
        let b = a.clone();
        assert!(std::sync::Arc::ptr_eq(&a.0, &b.0), "clone must not copy hops");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_paths_share_one_static_buffer() {
        let a = AsPath::new();
        let b = AsPath::default();
        assert!(std::sync::Arc::ptr_eq(&a.0, &b.0));
        assert!(a.is_empty());
    }

    #[test]
    fn prepended_builds_the_export_path() {
        let tail = AsPath::from(vec![AsId(5), AsId(9)]);
        let export = AsPath::prepended(AsId(1), &tail);
        assert_eq!(export.as_slice(), &[AsId(1), AsId(5), AsId(9)]);
        assert_eq!(AsPath::prepended(AsId(3), &[]).as_slice(), &[AsId(3)]);
    }

    #[test]
    fn display_formats_both_kinds() {
        let a = Update::announce(Prefix(7), vec![AsId(1), AsId(9)]);
        assert_eq!(a.to_string(), "ANNOUNCE P7 via AS1 AS9");
        let w = Update::withdraw(Prefix(7));
        assert_eq!(w.to_string(), "WITHDRAW P7");
    }

    #[test]
    fn updates_compare_structurally() {
        assert_eq!(
            Update::announce(Prefix(1), vec![AsId(2)]),
            Update::announce(Prefix(1), vec![AsId(2)])
        );
        assert_ne!(
            Update::announce(Prefix(1), vec![AsId(2)]),
            Update::announce(Prefix(1), vec![AsId(3)])
        );
        assert_ne!(Update::withdraw(Prefix(1)), Update::withdraw(Prefix(2)));
    }

    #[test]
    fn equality_ignores_the_provenance_stamp() {
        let plain = Update::withdraw(Prefix(1));
        let stamped = Update::withdraw(Prefix(1)).stamped(Provenance::root(9));
        assert_eq!(plain, stamped, "provenance is telemetry, not wire content");
        assert!(!plain.provenance.is_stamped());
        assert_eq!(stamped.provenance.roots(), &[9]);
        assert_eq!(stamped.clone().provenance.roots(), &[9]);
    }
}
