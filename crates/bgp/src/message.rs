//! BGP UPDATE messages.
//!
//! The simulator models the two UPDATE flavors that matter for churn
//! accounting: **announcements** (a reachable route with its AS path) and
//! **explicit withdrawals**. Every [`Update`] received by a node counts as
//! one unit of churn, exactly as in the paper's measurements.

use std::fmt;

use bgpscale_topology::AsId;

/// A routable destination. The paper studies single-prefix events, so a
/// prefix is an opaque identifier; library users announcing real address
/// blocks can maintain their own mapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prefix(pub u32);

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An AS path: the sequence of ASes a route has traversed, **nearest AS
/// first, origin last**. A node prepends its own id when exporting.
pub type AsPath = Vec<AsId>;

/// The payload of an UPDATE message.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UpdateKind {
    /// The sender announces reachability with the given AS path (the
    /// sender itself is the first path element).
    Announce(AsPath),
    /// The sender explicitly withdraws its previously announced route.
    Withdraw,
}

impl UpdateKind {
    /// True for announcements.
    pub fn is_announce(&self) -> bool {
        matches!(self, UpdateKind::Announce(_))
    }

    /// True for withdrawals.
    pub fn is_withdraw(&self) -> bool {
        matches!(self, UpdateKind::Withdraw)
    }

    /// The announced path, if any.
    pub fn path(&self) -> Option<&AsPath> {
        match self {
            UpdateKind::Announce(p) => Some(p),
            UpdateKind::Withdraw => None,
        }
    }
}

/// One UPDATE message concerning one prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Update {
    /// The prefix the message is about.
    pub prefix: Prefix,
    /// Announcement or withdrawal.
    pub kind: UpdateKind,
}

impl Update {
    /// Convenience constructor for an announcement.
    pub fn announce(prefix: Prefix, path: AsPath) -> Update {
        Update {
            prefix,
            kind: UpdateKind::Announce(path),
        }
    }

    /// Convenience constructor for a withdrawal.
    pub fn withdraw(prefix: Prefix) -> Update {
        Update {
            prefix,
            kind: UpdateKind::Withdraw,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            UpdateKind::Announce(path) => {
                write!(f, "ANNOUNCE {} via ", self.prefix)?;
                let mut first = true;
                for hop in path {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{hop}")?;
                    first = false;
                }
                Ok(())
            }
            UpdateKind::Withdraw => write!(f, "WITHDRAW {}", self.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = Update::announce(Prefix(1), vec![AsId(2), AsId(3)]);
        assert!(a.kind.is_announce());
        assert!(!a.kind.is_withdraw());
        assert_eq!(a.kind.path(), Some(&vec![AsId(2), AsId(3)]));
        let w = Update::withdraw(Prefix(1));
        assert!(w.kind.is_withdraw());
        assert_eq!(w.kind.path(), None);
    }

    #[test]
    fn display_formats_both_kinds() {
        let a = Update::announce(Prefix(7), vec![AsId(1), AsId(9)]);
        assert_eq!(a.to_string(), "ANNOUNCE P7 via AS1 AS9");
        let w = Update::withdraw(Prefix(7));
        assert_eq!(w.to_string(), "WITHDRAW P7");
    }

    #[test]
    fn updates_compare_structurally() {
        assert_eq!(
            Update::announce(Prefix(1), vec![AsId(2)]),
            Update::announce(Prefix(1), vec![AsId(2)])
        );
        assert_ne!(
            Update::announce(Prefix(1), vec![AsId(2)]),
            Update::announce(Prefix(1), vec![AsId(3)])
        );
        assert_ne!(Update::withdraw(Prefix(1)), Update::withdraw(Prefix(2)));
    }
}
