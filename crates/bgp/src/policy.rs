//! Routing policies: Gao–Rexford export rules, local preference, and
//! sender-side loop detection.
//!
//! The paper's configuration (§2): *"Routes learned from customers are
//! announced to all neighbors, while routes learned from peers or providers
//! are only announced to customers. A node prefers a route learned from a
//! customer over a route learned from a peer, over a route learned from a
//! provider."*

use bgpscale_topology::{AsId, Relationship};


/// Where a node's best route for a prefix comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteSource {
    /// The node originates the prefix itself.
    SelfOriginated,
    /// Learned from a neighbor with the given relationship (our view of
    /// the neighbor).
    Learned(Relationship),
}

/// LOCAL_PREF encoding of the prefer-customer policy. Higher is better.
/// Self-originated routes outrank everything.
pub fn local_pref(source: RouteSource) -> u8 {
    match source {
        RouteSource::SelfOriginated => 3,
        RouteSource::Learned(Relationship::Customer) => 2,
        RouteSource::Learned(Relationship::Peer) => 1,
        RouteSource::Learned(Relationship::Provider) => 0,
    }
}

/// The Gao–Rexford export filter: may a route from `source` be announced
/// to a neighbor we regard as `to`?
///
/// * Customer-learned and self-originated routes are exported to everyone
///   (they earn or cost nothing extra).
/// * Peer- and provider-learned routes are exported **only to customers**
///   (exporting them elsewhere would provide free transit).
pub fn export_allowed(source: RouteSource, to: Relationship) -> bool {
    match source {
        RouteSource::SelfOriginated | RouteSource::Learned(Relationship::Customer) => true,
        RouteSource::Learned(Relationship::Peer) | RouteSource::Learned(Relationship::Provider) => {
            to == Relationship::Customer
        }
    }
}

/// Sender-side loop detection: never export a route to a neighbor that
/// already appears on its AS path — the neighbor would discard it anyway,
/// and the paper's update accounting assumes such sends are suppressed
/// ("N will always send an update to its customers, unless its preferred
/// path to Z goes through the customer itself", §4.1).
pub fn would_loop(path: &[AsId], neighbor: AsId) -> bool {
    path.contains(&neighbor)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CUST: RouteSource = RouteSource::Learned(Relationship::Customer);
    const PEER: RouteSource = RouteSource::Learned(Relationship::Peer);
    const PROV: RouteSource = RouteSource::Learned(Relationship::Provider);

    #[test]
    fn local_pref_orders_customer_over_peer_over_provider() {
        assert!(local_pref(RouteSource::SelfOriginated) > local_pref(CUST));
        assert!(local_pref(CUST) > local_pref(PEER));
        assert!(local_pref(PEER) > local_pref(PROV));
    }

    #[test]
    fn customer_routes_export_everywhere() {
        for to in Relationship::ALL {
            assert!(export_allowed(CUST, to), "customer route to {to:?}");
            assert!(export_allowed(RouteSource::SelfOriginated, to));
        }
    }

    #[test]
    fn peer_and_provider_routes_export_only_to_customers() {
        for src in [PEER, PROV] {
            assert!(export_allowed(src, Relationship::Customer));
            assert!(!export_allowed(src, Relationship::Peer), "{src:?}→peer leaks");
            assert!(!export_allowed(src, Relationship::Provider), "{src:?}→provider leaks");
        }
    }

    /// The export matrix is exactly the one that guarantees valley-free
    /// paths: composing allowed exports can never produce down-up or
    /// peer-peer-peer shapes.
    #[test]
    fn export_matrix_is_valley_free() {
        // A route arriving at a node came over a link whose "shape" is
        // up (from customer), flat (from peer), or down (from provider)
        // as seen along the path direction of propagation. Export to a
        // customer = the update flows down; to a peer = flat; to a
        // provider = up. Valley-freedom requires: once flat or down,
        // only down is allowed.
        for src in [PEER, PROV] {
            // After a flat/down step, the only allowed next step is down
            // (export to customer = update flows to customer = path goes
            // provider→customer = down).
            assert!(export_allowed(src, Relationship::Customer));
            assert!(!export_allowed(src, Relationship::Peer));
            assert!(!export_allowed(src, Relationship::Provider));
        }
    }

    #[test]
    fn loop_detection_checks_membership() {
        let path = vec![AsId(3), AsId(7), AsId(1)];
        assert!(would_loop(&path, AsId(7)));
        assert!(!would_loop(&path, AsId(2)));
        assert!(!would_loop(&[], AsId(2)));
    }
}
