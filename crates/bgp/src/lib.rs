//! # bgpscale-bgp
//!
//! The BGP protocol machine of the CoNEXT 2008 scalability study: a
//! faithful implementation of the per-AS node model of the paper's Fig. 2,
//! **decoupled from any event loop** so it can be unit-tested in isolation
//! and driven by the network simulator in `bgpscale-core`.
//!
//! Components:
//!
//! * [`message`] — UPDATE messages ([`Update`]): announcements carrying an
//!   AS path, and explicit withdrawals.
//! * [`policy`] — Gao–Rexford "no-valley / prefer-customer" export rules
//!   and sender-side loop detection.
//! * [`decision`] — the best-route selection process: LOCAL_PREF by
//!   business relationship (customer > peer > provider), then shortest AS
//!   path, then a deterministic hash of the next-hop AS id.
//! * [`mrai`] — the per-interface MRAI rate-limiting output queue, in both
//!   the RFC 1771 flavor (**NO-WRATE**: withdrawals bypass the timer) and
//!   the RFC 4271 flavor (**WRATE**: withdrawals are rate-limited like any
//!   other update).
//! * [`node`] — [`BgpNode`]: Adj-RIB-in per neighbor, Loc-RIB, decision
//!   process, export filters, and one MRAI output queue per neighbor.
//!   Processing a message returns the resulting sends and timer requests as
//!   plain data ([`node::Actions`]); the simulator decides when they
//!   happen.
//! * [`config`] — [`BgpConfig`]: timer values, jitter range, processing and
//!   propagation delays, and the WRATE switch.
//! * [`rfd`] — optional Route Flap Damping (RFC 2439), the paper's
//!   future-work mechanism: per-(session, prefix) penalties with
//!   exponential decay, suppression and reuse.

#![forbid(unsafe_code)]

pub mod arena;
pub mod config;
pub mod decision;
pub mod message;
pub mod mrai;
pub mod node;
pub mod policy;
pub mod rfd;

pub use arena::{DampTable, PrefixTable, SessionSlab};
pub use bgpscale_obs::{Provenance, RootCauseKind};
pub use config::{BgpConfig, MraiMode, MraiScope, ServiceTimeModel};
pub use message::{AsPath, Prefix, Update, UpdateKind};
pub use node::{BgpNode, NodeCostCounters};
