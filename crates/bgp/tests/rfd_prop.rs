//! Property-based tests for Route Flap Damping: the figure of merit is a
//! well-behaved dynamical system for any flap pattern.

use bgpscale_bgp::rfd::{DampState, FlapKind, RfdConfig};
use bgpscale_simkernel::{SimDuration, SimTime};
use proptest::prelude::*;

fn any_flap() -> impl Strategy<Value = FlapKind> {
    prop::sample::select(vec![
        FlapKind::Withdrawal,
        FlapKind::Readvertisement,
        FlapKind::AttributeChange,
    ])
}

proptest! {
    /// The penalty is always within [0, max_penalty], for any flap
    /// sequence and spacing.
    #[test]
    fn penalty_bounded(
        script in prop::collection::vec((any_flap(), 0u64..10_000), 1..60),
    ) {
        let cfg = RfdConfig::default();
        let mut s = DampState::default();
        let mut now = SimTime::ZERO;
        for (kind, gap_s) in script {
            now += SimDuration::from_secs(gap_s);
            s.charge(kind, now, &cfg);
            prop_assert!(s.penalty >= 0.0);
            prop_assert!(s.penalty <= cfg.max_penalty + 1e-9);
        }
    }

    /// Decay is monotone: the penalty never grows between charges.
    #[test]
    fn decay_is_monotone(gap_a in 0u64..100_000, gap_b in 0u64..100_000) {
        let cfg = RfdConfig::default();
        let mut s = DampState::default();
        s.charge(FlapKind::Withdrawal, SimTime::ZERO, &cfg);
        let (t1, t2) = if gap_a <= gap_b { (gap_a, gap_b) } else { (gap_b, gap_a) };
        let p1 = s.penalty_at(SimTime::from_secs(t1), &cfg);
        let p2 = s.penalty_at(SimTime::from_secs(t2), &cfg);
        prop_assert!(p2 <= p1 + 1e-9, "penalty grew from {p1} to {p2}");
    }

    /// Suppression is reachable only by crossing the threshold, and once
    /// `maybe_reuse` fires the state is consistent: not suppressed and at
    /// or below the reuse threshold.
    #[test]
    fn reuse_post_state_is_consistent(
        flaps in 1usize..12,
        extra_wait_s in 0u64..50_000,
    ) {
        let cfg = RfdConfig::default();
        let mut s = DampState::default();
        let t0 = SimTime::from_secs(10);
        for _ in 0..flaps {
            s.charge(FlapKind::Withdrawal, t0, &cfg);
        }
        if let Some(at) = s.reuse_time(&cfg) {
            let wake = at + SimDuration::from_secs(extra_wait_s);
            let changed = s.maybe_reuse(wake, &cfg);
            prop_assert!(changed, "wake at/after reuse_time must un-suppress");
            prop_assert!(!s.suppressed);
            prop_assert!(s.penalty <= cfg.reuse_threshold + 1e-6);
        } else {
            prop_assert!(!s.suppressed, "no reuse time implies not suppressed");
        }
    }

    /// The analytic reuse time is exact: one microsecond earlier the
    /// penalty is still above the threshold (modulo the 1 ms guard), and
    /// at the reuse time it is at or below.
    #[test]
    fn reuse_time_brackets_the_threshold(flaps in 3usize..12) {
        let cfg = RfdConfig::default();
        let mut s = DampState::default();
        let t0 = SimTime::from_secs(5);
        for _ in 0..flaps {
            s.charge(FlapKind::Withdrawal, t0, &cfg);
        }
        prop_assert!(s.suppressed);
        let at = s.reuse_time(&cfg).unwrap();
        let after = s.penalty_at(at, &cfg);
        prop_assert!(after <= cfg.reuse_threshold + 1e-6, "{after} at reuse time");
        // 2 ms before the (1 ms-guarded) reuse time the penalty is still
        // above threshold.
        let before = s.penalty_at(
            SimTime::from_micros(at.as_micros().saturating_sub(2_000)),
            &cfg,
        );
        prop_assert!(before >= cfg.reuse_threshold - 1e-6, "{before} just before");
    }

    /// Order sensitivity: measured immediately after the final charge, a
    /// burst of n simultaneous flaps accumulates at least as much penalty
    /// as the same flaps spread over time (earlier charges decay before
    /// the later ones arrive).
    #[test]
    fn spreading_flaps_never_increases_peak_penalty(
        flaps in 1usize..10,
        gap_s in 1u64..5_000,
    ) {
        let cfg = RfdConfig::default();
        let mut burst = DampState::default();
        let mut spread = DampState::default();
        let t0 = SimTime::from_secs(1);
        let mut t = t0;
        for _ in 0..flaps {
            burst.charge(FlapKind::Withdrawal, t0, &cfg);
            spread.charge(FlapKind::Withdrawal, t, &cfg);
            t += SimDuration::from_secs(gap_s);
        }
        // `penalty` is current as of each state's own last charge.
        prop_assert!(
            burst.penalty >= spread.penalty - 1e-6,
            "burst {} < spread {}",
            burst.penalty,
            spread.penalty
        );
    }
}
