//! Property-based tests for the protocol machine: the decision process is
//! a strict total order; the MRAI output queue never lies to the
//! neighbor.

use bgpscale_bgp::decision::{preference_key, select_best, Candidate};
use bgpscale_bgp::mrai::{OutQueue, Submit};
use bgpscale_bgp::{AsPath, MraiMode, Prefix, Provenance, Update, UpdateKind};
use bgpscale_topology::{AsId, Relationship};
use proptest::prelude::*;

fn rel_strategy() -> impl Strategy<Value = Relationship> {
    prop::sample::select(vec![
        Relationship::Customer,
        Relationship::Peer,
        Relationship::Provider,
    ])
}

fn path_strategy() -> impl Strategy<Value = AsPath> {
    prop::collection::vec((0u32..1000).prop_map(AsId), 1..8).prop_map(AsPath::from)
}

proptest! {
    /// The decision order is total and antisymmetric over distinct
    /// neighbors: keys never tie, so `select_best` has a unique winner
    /// regardless of presentation order.
    #[test]
    fn decision_is_presentation_order_independent(
        entries in prop::collection::vec((0u32..10_000, rel_strategy(), path_strategy()), 1..12),
    ) {
        // Deduplicate neighbor ids (one route per session).
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<_> = entries
            .into_iter()
            .filter(|(id, _, _)| seen.insert(*id))
            .collect();
        let cands: Vec<Candidate<'_>> = entries
            .iter()
            .map(|(id, rel, path)| Candidate { neighbor: AsId(*id), rel: *rel, path: path.as_slice() })
            .collect();
        let winner = select_best(&cands).unwrap();
        let winner_id = cands[winner].neighbor;
        let mut reversed = cands.clone();
        reversed.reverse();
        let winner2 = select_best(&reversed).unwrap();
        prop_assert_eq!(reversed[winner2].neighbor, winner_id);
        // The winner's key is strictly the maximum.
        for (i, c) in cands.iter().enumerate() {
            if i != winner {
                prop_assert!(preference_key(&cands[winner]) > preference_key(c));
            }
        }
    }

    /// Local preference dominates path length: a customer route always
    /// beats any peer/provider route regardless of lengths.
    #[test]
    fn customer_routes_always_win(
        cust_path in path_strategy(),
        other_path in path_strategy(),
        other_rel in prop::sample::select(vec![Relationship::Peer, Relationship::Provider]),
    ) {
        let cands = vec![
            Candidate { neighbor: AsId(1), rel: Relationship::Customer, path: cust_path.as_slice() },
            Candidate { neighbor: AsId(2), rel: other_rel, path: other_path.as_slice() },
        ];
        prop_assert_eq!(select_best(&cands), Some(0));
    }

    /// MRAI queue soundness: after any sequence of submissions and
    /// flushes, replaying every transmitted update against a model of the
    /// neighbor's state reproduces the queue's Adj-RIB-out, and once all
    /// timers drain the neighbor's state equals the last submitted
    /// intent.
    #[test]
    fn outqueue_never_lies(
        mode in prop::sample::select(vec![MraiMode::NoWrate, MraiMode::Wrate]),
        script in prop::collection::vec(
            // (prefix 0..3, intent: None = withdraw, Some(k) = announce path k)
            ((0u32..3).prop_map(Prefix), prop::option::of(0u32..5), any::<bool>()),
            1..60,
        ),
    ) {
        let mut q = OutQueue::new();
        // The neighbor's view, replayed from transmissions.
        let mut neighbor: std::collections::BTreeMap<Prefix, AsPath> = Default::default();
        // The latest intent per prefix.
        let mut intent: std::collections::BTreeMap<Prefix, Option<AsPath>> = Default::default();

        let apply = |neighbor: &mut std::collections::BTreeMap<Prefix, AsPath>, u: Update| {
            match u.kind {
                UpdateKind::Announce(p) => { neighbor.insert(u.prefix, p); }
                UpdateKind::Withdraw => {
                    prop_assert!(neighbor.remove(&u.prefix).is_some(),
                        "withdrawal for a route the neighbor does not hold");
                    }
            }
            Ok(())
        };

        for (prefix, path_id, flush_after) in script {
            let path: Option<AsPath> = path_id.map(|k| AsPath::from(vec![AsId(100 + k), AsId(999)]));
            intent.insert(prefix, path.clone());
            match q.submit(prefix, path, mode, &Provenance::none()) {
                Submit::SendNow { update, .. } => apply(&mut neighbor, update)?,
                Submit::Queued | Submit::Suppressed => {}
            }
            if flush_after && q.timer_armed() {
                let (sent, _) = q.flush(None);
                for u in sent {
                    apply(&mut neighbor, u)?;
                }
            }
            // Invariant: the neighbor state always equals the Adj-RIB-out.
            for p in [Prefix(0), Prefix(1), Prefix(2)] {
                prop_assert_eq!(neighbor.get(&p), q.advertised(p),
                    "Adj-RIB-out diverged from the neighbor's actual state");
            }
        }

        // Drain all timers.
        while q.timer_armed() {
            let (sent, _) = q.flush(None);
            for u in sent {
                apply(&mut neighbor, u)?;
            }
        }
        // Final neighbor state must equal the final intents.
        for p in [Prefix(0), Prefix(1), Prefix(2)] {
            let want = intent.get(&p).cloned().flatten();
            prop_assert_eq!(neighbor.get(&p).cloned(), want,
                "after drain, neighbor state != last intent for {:?}", p);
        }
    }

    /// Duplicate submissions are always suppressed, never re-sent.
    #[test]
    fn duplicate_intent_suppressed(
        mode in prop::sample::select(vec![MraiMode::NoWrate, MraiMode::Wrate]),
        path in path_strategy(),
    ) {
        let mut q = OutQueue::new();
        let first = q.submit(Prefix(0), Some(path.clone()), mode, &Provenance::none());
        let sent_now = matches!(first, Submit::SendNow { .. });
        prop_assert!(sent_now);
        let second = q.submit(Prefix(0), Some(path), mode, &Provenance::none());
        prop_assert_eq!(second, Submit::Suppressed);
    }
}
