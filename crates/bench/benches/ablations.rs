//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs one complete C-event at n = 400 under a modified
//! configuration. Criterion measures the wall cost; the first iteration
//! of each variant also prints the resulting churn to stderr so the
//! *behavioral* effect of the knob is visible in the bench log (e.g. how
//! much churn sender-side loop detection suppresses).

use std::sync::Once;
use std::time::Duration;

use bgpscale_bench::{fixture, one_c_event, Fixture};
use bgpscale_bgp::config::ServiceTimeModel;
use bgpscale_bgp::{BgpConfig, MraiMode, MraiScope};
use bgpscale_simkernel::SimDuration;
use bgpscale_bench::harness::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report_once(label: &str, fix: &Fixture, cfg: &BgpConfig, once: &Once) {
    once.call_once(|| {
        let updates = one_c_event(fix, cfg.clone(), 77);
        eprintln!("[ablation] {label}: {updates} updates per C-event");
    });
}

fn bench_mrai_value(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mrai_value");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let fix = fixture(400, 5);
    for secs in [1u64, 5, 15, 30, 60] {
        let cfg = BgpConfig {
            mrai: SimDuration::from_secs(secs),
            ..BgpConfig::default()
        };
        let once = Once::new();
        report_once(&format!("MRAI={secs}s NO-WRATE"), &fix, &cfg, &once);
        g.bench_function(format!("mrai_{secs}s"), |b| {
            b.iter(|| black_box(one_c_event(&fix, cfg.clone(), 77)));
        });
    }
    g.finish();
}

fn bench_loop_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_sender_side_loop");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let fix = fixture(400, 5);
    for (label, enabled) in [("sender_side", true), ("receiver_side_only", false)] {
        let cfg = BgpConfig {
            sender_side_loop_detection: enabled,
            ..BgpConfig::default()
        };
        let once = Once::new();
        report_once(label, &fix, &cfg, &once);
        g.bench_function(label, |b| {
            b.iter(|| black_box(one_c_event(&fix, cfg.clone(), 77)));
        });
    }
    g.finish();
}

fn bench_service_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_processing_delay");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let fix = fixture(400, 5);
    for (label, model) in [
        ("uniform_0_100ms", ServiceTimeModel::Uniform),
        ("constant_50ms", ServiceTimeModel::Constant),
    ] {
        let cfg = BgpConfig {
            service_model: model,
            ..BgpConfig::default()
        };
        let once = Once::new();
        report_once(label, &fix, &cfg, &once);
        g.bench_function(label, |b| {
            b.iter(|| black_box(one_c_event(&fix, cfg.clone(), 77)));
        });
    }
    g.finish();
}

fn bench_wrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_wrate");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let fix = fixture(400, 5);
    for (label, mode) in [("no_wrate", MraiMode::NoWrate), ("wrate", MraiMode::Wrate)] {
        let cfg = BgpConfig {
            mrai_mode: mode,
            ..BgpConfig::default()
        };
        let once = Once::new();
        report_once(label, &fix, &cfg, &once);
        g.bench_function(label, |b| {
            b.iter(|| black_box(one_c_event(&fix, cfg.clone(), 77)));
        });
    }
    g.finish();
}

fn bench_mrai_scope(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mrai_scope");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let fix = fixture(400, 5);
    for (label, scope) in [
        ("per_interface", MraiScope::PerInterface),
        ("per_prefix", MraiScope::PerPrefix),
    ] {
        let cfg = BgpConfig {
            mrai_scope: scope,
            ..BgpConfig::default()
        };
        let once = Once::new();
        report_once(label, &fix, &cfg, &once);
        g.bench_function(label, |b| {
            b.iter(|| black_box(one_c_event(&fix, cfg.clone(), 77)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500));
    targets = bench_mrai_value, bench_loop_detection, bench_service_model, bench_wrate, bench_mrai_scope
}
criterion_main!(benches);
