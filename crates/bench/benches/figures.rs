//! One benchmark per reproduced table/figure.
//!
//! Each bench runs the *same driver code* as the `repro` binary, at micro
//! scale (n ≤ 300, 2 events per cell), so `cargo bench` finishes quickly
//! while still exercising every figure's full code path — topology
//! generation, simulation, factor extraction, claim evaluation,
//! rendering. A fresh [`Sweeper`] is built per iteration so the memoizing
//! cache cannot hide regressions.

use std::time::Duration;

use bgpscale_bench::micro_config;
use bgpscale_experiments::{figures, Sweeper};
use bgpscale_bench::harness::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("table1", |b| {
        b.iter(|| black_box(figures::table1::run(&micro_config())));
    });
    g.bench_function("fig01_churn_trend", |b| {
        b.iter(|| black_box(figures::fig1::run(1)));
    });
    g.bench_function("fig03_topology_sketch", |b| {
        b.iter(|| black_box(figures::fig3::run(1)));
    });

    macro_rules! sweep_fig {
        ($name:literal, $module:ident) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let mut sw = Sweeper::new(micro_config());
                    black_box(figures::$module::run(&mut sw))
                });
            });
        };
    }
    sweep_fig!("fig04_baseline_churn", fig4);
    sweep_fig!("fig05_churn_components", fig5);
    sweep_fig!("fig06_relative_increase", fig6);
    sweep_fig!("fig07_factors", fig7);
    sweep_fig!("fig08_population_mix", fig8);
    sweep_fig!("fig09_multihoming", fig9);
    sweep_fig!("fig10_peering", fig10);
    sweep_fig!("fig11_provider_pref", fig11);
    sweep_fig!("fig12_wrate", fig12);
    sweep_fig!("ext_levent", ext_levent);
    sweep_fig!("ext_burstiness", ext_burstiness);
    sweep_fig!("ext_rfd", ext_rfd);
    sweep_fig!("ext_convergence", ext_convergence);
    sweep_fig!("ext_concurrency", ext_concurrency);

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500));
    targets = bench_figures
}
criterion_main!(benches);
