//! Microbenchmarks of the substrate layers: event queue, PRNG, decision
//! process, topology generation, graph metrics.

use std::time::Duration;

use bgpscale_bgp::decision::{select_best, Candidate};
use bgpscale_bench::fixture;
use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};
use bgpscale_simkernel::{EventQueue, SimTime};
use bgpscale_topology::metrics::{avg_valley_free_path_length, clustering_coefficient};
use bgpscale_topology::valley::valley_free_distances;
use bgpscale_topology::{generate, AsId, GrowthScenario, Relationship};
use bgpscale_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k_random", |b| {
        let mut rng = Xoshiro256StarStar::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.next_below(1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for &t in &times {
                q.schedule(SimTime::from_micros(t), t);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_next_u64_x1000", |b| {
        let mut rng = Xoshiro256StarStar::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    g.bench_function("choose_weighted_1000", |b| {
        let mut rng = Xoshiro256StarStar::new(9);
        let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        b.iter(|| black_box(rng.choose_weighted(&weights)));
    });
    g.finish();
}

fn bench_decision(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision");
    // A T-node-at-n=10000-sized candidate set.
    let paths: Vec<Vec<AsId>> = (0..1500u32)
        .map(|i| (0..(2 + i % 4)).map(|k| AsId(10_000 + i * 8 + k)).collect())
        .collect();
    let cands: Vec<Candidate<'_>> = paths
        .iter()
        .enumerate()
        .map(|(i, path)| Candidate {
            neighbor: AsId(i as u32),
            rel: match i % 3 {
                0 => Relationship::Customer,
                1 => Relationship::Peer,
                _ => Relationship::Provider,
            },
            path: path.as_slice(),
        })
        .collect();
    g.bench_function("select_best_1500_candidates", |b| {
        b.iter(|| black_box(select_best(black_box(&cands))));
    });
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    g.bench_function("generate_baseline_n1000", |b| {
        b.iter(|| black_box(generate(GrowthScenario::Baseline, 1_000, 42)));
    });
    g.bench_function("generate_dense_core_n1000", |b| {
        b.iter(|| black_box(generate(GrowthScenario::DenseCore, 1_000, 42)));
    });
    let graph = generate(GrowthScenario::Baseline, 1_000, 42);
    g.bench_function("clustering_coefficient_n1000", |b| {
        b.iter(|| black_box(clustering_coefficient(&graph, 1)));
    });
    g.bench_function("valley_free_distances_n1000", |b| {
        b.iter(|| black_box(valley_free_distances(&graph, AsId(999))));
    });
    g.bench_function("avg_path_length_n1000_5src", |b| {
        b.iter(|| black_box(avg_valley_free_path_length(&graph, 5, 1)));
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    let fix = fixture(500, 3);
    g.bench_function("c_event_n500", |b| {
        b.iter_batched(
            || fix.graph.clone(),
            |graph| {
                let mut sim = bgpscale_core::Simulator::new(
                    graph,
                    bgpscale_bgp::BgpConfig::default(),
                    11,
                );
                sim.originate(fix.origin, bgpscale_bgp::Prefix(0));
                sim.run_to_quiescence().unwrap();
                sim.withdraw(fix.origin, bgpscale_bgp::Prefix(0));
                sim.run_to_quiescence().unwrap();
                black_box(sim.events_processed())
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_event_queue, bench_rng, bench_decision, bench_topology, bench_simulator
}
criterion_main!(benches);
