//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds without access to a crate registry, so the bench
//! targets link against this module instead of the real criterion crate.
//! It implements the subset of the API the `benches/` files use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a plain warm-up + timed-samples
//! measurement loop. Results (mean wall time per iteration and sample
//! count) are printed to stdout in a stable `group/id: …` format, which is
//! what the perf-trajectory tooling greps for.

use std::time::Duration;

use bgpscale_simkernel::Stopwatch;

/// How `iter_batched` should amortize setup cost. Only the variants the
/// benches use are provided; this shim runs one routine call per setup
/// regardless, so the variant only documents intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: setup is cheap relative to the routine.
    SmallInput,
    /// Large per-iteration input (e.g. a cloned topology).
    LargeInput,
    /// One setup per routine call, always.
    PerIteration,
}

/// Top-level harness configuration, threaded into every group.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets how long to run each benchmark before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the time budget for collecting samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and (overridable) settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the target sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark: `f` is invoked once per sample with a
    /// [`Bencher`] and must call `iter` / `iter_batched` exactly once.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };

        // Warm-up: run untimed passes until the budget is spent.
        let warm_start = Stopwatch::start();
        while warm_start.elapsed() < self.warm_up {
            b.elapsed = Duration::ZERO;
            f(&mut b);
        }

        // Measurement: collect up to sample_size samples within the budget
        // (always at least one).
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let measure_start = Stopwatch::start();
        while samples.len() < self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed);
            if measure_start.elapsed() > self.measurement && !samples.is_empty() {
                break;
            }
        }

        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?}  min {:?}  ({} samples)",
            self.name,
            id,
            mean,
            min,
            samples.len()
        );
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine it is given.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `routine` (criterion would loop internally; this
    /// shim records one call per sample, which is equivalent for the
    /// millisecond-scale routines benched here).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Stopwatch::start();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(out);
    }

    /// Times `routine` on a fresh input from `setup`, excluding setup cost
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Stopwatch::start();
        let out = routine(input);
        self.elapsed += start.elapsed();
        drop(out);
    }
}

/// Declares a bench entry point: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::harness::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_returns() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut calls = 0u32;
        let mut g = c.benchmark_group("shim");
        g.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        assert!(calls >= 3, "expected warm-up + 3 samples, got {calls}");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || std::thread::sleep(Duration::from_millis(5)),
            |()| (),
            BatchSize::LargeInput,
        );
        assert!(b.elapsed < Duration::from_millis(5));
    }
}
