//! # bgpscale-bench
//!
//! Criterion benchmarks for the `bgpscale` workspace. The library part is
//! a small toolbox shared by the bench targets; the measurements live in
//! `benches/`:
//!
//! * `substrates` — microbenches of the building blocks: event queue,
//!   PRNG, decision process, topology generation, graph metrics.
//! * `figures` — one benchmark per reproduced table/figure, running the
//!   same driver code as the `repro` binary at micro scale. These exist
//!   so that a performance regression in any part of the pipeline is
//!   visible per experiment.
//! * `ablations` — the design-choice ablations called out in DESIGN.md:
//!   MRAI value sweep, sender-side vs receiver-side loop detection,
//!   uniform vs constant service times, WRATE vs NO-WRATE.

#![forbid(unsafe_code)]

pub mod harness;

use bgpscale_bgp::{BgpConfig, Prefix};
use bgpscale_core::cevent::run_c_event;
use bgpscale_core::Simulator;
use bgpscale_experiments::RunConfig;
use bgpscale_topology::{generate, AsGraph, AsId, GrowthScenario, NodeType};

/// The micro sweep used by the per-figure benches: small enough that a
/// full figure regenerates in well under a second.
pub fn micro_config() -> RunConfig {
    RunConfig {
        // Three sizes: the regression figures need ≥3 points for the
        // quadratic fits.
        sizes: vec![200, 250, 300],
        events: 2,
        seed: 0x2008_0612,
    }
}

/// A reusable benchmark fixture: topology plus a C-type originator.
pub struct Fixture {
    /// The generated topology.
    pub graph: AsGraph,
    /// A customer-stub event originator.
    pub origin: AsId,
}

/// Builds a Baseline fixture of size `n`.
pub fn fixture(n: usize, seed: u64) -> Fixture {
    let graph = generate(GrowthScenario::Baseline, n, seed);
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .expect("baseline topologies contain C nodes");
    Fixture { graph, origin }
}

/// Runs one complete C-event on a fresh simulator and returns the total
/// churn (the value ablation benches care about).
pub fn one_c_event(fix: &Fixture, cfg: BgpConfig, seed: u64) -> u64 {
    let mut sim = Simulator::new(fix.graph.clone(), cfg, seed);
    run_c_event(&mut sim, fix.origin, Prefix(0))
        .expect("C-event converges")
        .total_updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_and_event_helper_work() {
        let fix = fixture(150, 1);
        assert_eq!(fix.graph.len(), 150);
        let updates = one_c_event(&fix, BgpConfig::default(), 2);
        assert!(updates > 0);
    }

    #[test]
    fn micro_config_is_small() {
        let cfg = micro_config();
        assert!(cfg.sizes.iter().all(|&n| n <= 300));
        assert!(cfg.events <= 2);
    }
}
