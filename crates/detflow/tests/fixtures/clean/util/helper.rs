//! The audited crossing: reading the sanctioned wall-side module is
//! fine here because the result never feeds a deterministic artifact.

pub fn ticks(seed: u64) -> u64 {
    let base = wall::clock::now_us(); // detflow::allow(det-closure, reason = "diagnostic timing only; never feeds a deterministic artifact")
    base.wrapping_add(seed)
}
