//! A compliant artifact-writing binary: the written file carries the
//! schema stamp, and main's closure mentions both exit-constant groups.

const EXIT_OK: i32 = 0;
const EXIT_FAIL: i32 = 1;

fn write_report(path: &str, value: u64) -> bool {
    let body = format!("{{\"schema_version\":{SCHEMA_VERSION},\"value\":{value}}}");
    std::fs::write(path, body).is_ok()
}

fn main() {
    let code = if write_report("out.json", 7) { EXIT_OK } else { EXIT_FAIL };
    std::process::exit(code);
}
