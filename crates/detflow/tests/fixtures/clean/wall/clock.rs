//! The sanctioned wall-side module; the closure pass never walks
//! through it, so its internals are unconstrained by detflow.

pub fn now_us() -> u64 {
    let d = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    d.as_secs()
}
