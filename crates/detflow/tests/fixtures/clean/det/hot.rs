//! Hot-path root; the reachable panic is an audited invariant.

pub fn step(frame: u64) -> u64 {
    pick(frame).wrapping_mul(3)
}

// detflow::allow(panic-surface, reason = "slot is frame % 4, always within the 4-entry table")
fn pick(frame: u64) -> u64 {
    let table = [2u64, 3, 5, 8];
    let slot = (frame % 4) as usize;
    table[slot]
}
