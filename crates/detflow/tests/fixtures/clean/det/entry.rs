//! Deterministic entry whose only wall-side reach is audited at the
//! crossing site, over in util/helper.rs.

pub fn simulate(seed: u64) -> u64 {
    util::helper::ticks(seed)
}
