//! Artifact writers: one flows through the schema stamp, one does not.

pub fn save_unstamped(path: &str, body: &str) { //~ artifact-contract
    std::fs::write(path, body).ok();
}

pub fn save_stamped(path: &str, payload: u64) {
    let body = format!("{{\"schema_version\":{SCHEMA_VERSION},\"value\":{payload}}}");
    std::fs::write(path, body).ok();
}
