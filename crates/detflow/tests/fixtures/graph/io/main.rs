//! An artifact-writing binary that exits with magic numbers instead of
//! the shared exit constants.

fn main() { //~ artifact-contract
    crate::write::save_stamped("out.json", 7);
    std::process::exit(0);
}
