//! Deterministic-tier entry points. No banned token appears anywhere in
//! this file — the wall-clock reads live two hops away, behind a plain
//! function call into another crate — so detlint's line rules have
//! nothing to flag here. Only the call-graph closure can see it.

pub fn simulate(seed: u64) -> u64 {
    util::helper::ticks(seed)
}

pub fn checkpoint(seed: u64) -> u64 {
    util::helper::stamp(seed)
}
