//! The hot-path root and a panicking helper it reaches.

pub fn step(frame: u64) -> u64 {
    let looked = pick(frame);
    looked.wrapping_mul(3)
}

fn pick(frame: u64) -> u64 { //~ panic-surface
    let table = [2u64, 3, 5, 8];
    let slot = (frame % 4) as usize;
    table[slot].checked_mul(frame).unwrap()
}
