//! Allow hygiene: one suppression that audits nothing (stale) and one
//! whose rule id does not exist (bad).

// detflow::allow(det-closure, reason = "audits nothing: no crossing anchors below") //~ stale-allow
pub fn idle(x: u64) -> u64 {
    x.rotate_left(1)
}

// detflow::allow(no-such-rule, reason = "the rule id is unknown") //~ bad-allow
pub fn spin(x: u64) -> u64 {
    x.rotate_right(1)
}
