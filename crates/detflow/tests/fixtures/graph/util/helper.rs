//! Mid-tier helpers: scanned, but in neither the deterministic tier nor
//! a sanctioned wall-side module. The two crossings below are exactly
//! what a line rule cannot attribute to the deterministic tier; detflow
//! anchors them here via the call graph, with a witness path.

pub fn ticks(seed: u64) -> u64 {
    let base = wall::clock::now_us(); //~ det-closure
    base.wrapping_add(seed)
}

pub fn stamp(seed: u64) -> u64 {
    let t = std::time::Instant::now(); //~ det-closure
    mix(seed, t.elapsed().as_secs())
}

fn mix(a: u64, b: u64) -> u64 {
    a ^ b.rotate_left(7)
}
