//! The sanctioned wall-side module of this case (declared under
//! [wall-side] in detflow.toml). The closure pass flags edges INTO this
//! module; it never walks through it, so its internals carry no
//! markers.

pub fn now_us() -> u64 {
    let d = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    d.as_secs()
}
