//! Integration tests for `bgpscale-detflow`: exact fixture anchors, the
//! real-workspace gate, JSON byte-determinism, end-to-end CLI exit
//! codes, and — the acceptance test of the whole tool — proof that the
//! seeded cross-function wall-clock reach is invisible to detlint's
//! line rules while detflow flags it with a witness path.

use std::path::{Path, PathBuf};
use std::process::Command;

use bgpscale_detflow::{analyze, fixtures, report, Analysis, FlowConfig, Rule};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn analyze_case(name: &str) -> Analysis {
    let dir = fixtures_root().join(name);
    let cfg = FlowConfig::load(&dir.join("detflow.toml")).expect("fixture config");
    analyze(&dir, &cfg).expect("fixture analysis")
}

/// `(file, line, rule)` triples, already in reporting order.
fn findings(a: &Analysis) -> Vec<(String, usize, Rule)> {
    a.diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

#[test]
fn fixture_self_test_passes() {
    let report = fixtures::run(&fixtures_root()).expect("fixtures run");
    assert!(
        report.ok(),
        "fixture self-test failed:\n{}",
        fixtures::render(&report)
    );
    assert!(
        report.checked >= 10,
        "expected every seeded marker to be checked, got {}",
        report.checked
    );
}

#[test]
fn graph_case_fires_with_exact_anchors() {
    // Full set equality, not spot checks: the graph case must produce
    // exactly these findings — one per pass plus the allow-hygiene pair
    // — each at its precise (file, line) anchor.
    let got = findings(&analyze_case("graph"));
    let expected: Vec<(String, usize, Rule)> = [
        ("det/allows.rs", 4, Rule::StaleAllow),
        ("det/allows.rs", 9, Rule::BadAllow),
        ("det/hot.rs", 8, Rule::PanicSurface),
        ("io/main.rs", 4, Rule::ArtifactContract),
        ("io/write.rs", 3, Rule::ArtifactContract),
        ("util/helper.rs", 7, Rule::DetClosure),
        ("util/helper.rs", 12, Rule::DetClosure),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn drift_case_flags_every_config_at_line_one() {
    let got = findings(&analyze_case("drift"));
    let expected: Vec<(String, usize, Rule)> = ["clippy.toml", "detflow.toml", "detlint.toml"]
        .into_iter()
        .map(|f| (f.to_string(), 1, Rule::ConfigCoherence))
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn clean_case_has_zero_findings_and_counted_allows() {
    let a = analyze_case("clean");
    assert!(
        a.diagnostics.is_empty(),
        "false positives in the clean case: {:?}",
        findings(&a)
    );
    // Both audited allows are used, hence counted — an unused one would
    // have been a stale-allow diagnostic above.
    let allows: Vec<(String, usize, Rule)> = a
        .allows
        .iter()
        .map(|al| (al.file.clone(), al.line, al.rule))
        .collect();
    assert_eq!(
        allows,
        [
            ("det/hot.rs".to_string(), 7, Rule::PanicSurface),
            ("util/helper.rs".to_string(), 5, Rule::DetClosure),
        ]
    );
}

#[test]
fn every_rule_fires_somewhere_in_the_fixtures() {
    let mut seen: Vec<Rule> = Vec::new();
    for case in ["graph", "drift"] {
        for (_, _, rule) in findings(&analyze_case(case)) {
            if !seen.contains(&rule) {
                seen.push(rule);
            }
        }
    }
    for rule in Rule::ALL {
        assert!(seen.contains(&rule), "rule {rule} fired nowhere in the fixtures");
    }
}

#[test]
fn det_closure_witness_names_the_entry_point() {
    let a = analyze_case("graph");
    let witness_of = |line: usize| -> Vec<String> {
        a.diagnostics
            .iter()
            .find(|d| d.rule == Rule::DetClosure && d.file == "util/helper.rs" && d.line == line)
            .expect("det-closure finding")
            .witness
            .clone()
    };
    // The witness walks from the deterministic entry point to the
    // function holding the crossing call — the cross-function evidence
    // a line rule cannot produce.
    assert_eq!(witness_of(7), ["det::entry::simulate", "util::helper::ticks"]);
    assert_eq!(witness_of(12), ["det::entry::checkpoint", "util::helper::stamp"]);
}

#[test]
fn cross_function_wall_clock_is_invisible_to_detlint() {
    // THE acceptance fixture: the same tree, the same tier map, scanned
    // by detlint's line rules — zero diagnostics, because no line in the
    // deterministic tier holds a banned token. The wall-clock reads sit
    // two calls away in util/helper.rs, outside detlint's deterministic
    // paths. detflow's closure pass (asserted exact in
    // `graph_case_fires_with_exact_anchors`) is what closes this gap.
    let dir = fixtures_root().join("graph");
    let cfg = bgpscale_detlint::config::Config::load(&dir.join("detlint.toml"))
        .expect("graph detlint.toml");
    let a = bgpscale_detlint::scan::scan_workspace(&dir, &cfg).expect("detlint scan");
    assert!(
        a.diagnostics.is_empty(),
        "detlint unexpectedly flagged the graph fixture (the blind-spot \
         premise broke): {:?}",
        a.diagnostics.iter().map(|d| d.render()).collect::<Vec<_>>()
    );
    assert!(
        a.files.iter().any(|f| f == "util/helper.rs"),
        "detlint never scanned the file holding the crossing — the \
         comparison would be vacuous"
    );
}

#[test]
fn workspace_is_clean_under_detflow() {
    // The gate that matters: the real workspace, under the checked-in
    // detflow.toml, analyzes clean. This is what makes
    // `cargo test -p bgpscale-detflow` a determinism gate and not just a
    // unit-test suite.
    let root = workspace_root();
    let cfg = FlowConfig::load(&root.join("detflow.toml")).expect("workspace detflow.toml");
    let a = analyze(&root, &cfg).expect("workspace analysis");
    assert!(
        a.files.len() > 50 && a.functions > 400 && a.entry_points > 150,
        "scan looks hollow: {} files, {} functions, {} entry points — \
         check detflow.toml paths",
        a.files.len(),
        a.functions,
        a.entry_points
    );
    assert_eq!(a.hot_roots, 6, "a [hot-paths] root no longer matches any function");
    assert!(a.writers >= 5, "writer detection looks broken: {}", a.writers);
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        a.diagnostics.is_empty(),
        "the workspace must analyze clean (restructure the hazard or add \
         an audited detflow::allow):\n{}",
        rendered.join("\n")
    );
    // Audited allows are a curated list: keep a visible floor & ceiling.
    assert!(
        !a.allows.is_empty() && a.allows.len() < 64,
        "unexpected audited-allow count: {}",
        a.allows.len()
    );
}

#[test]
fn workspace_json_is_byte_deterministic() {
    let root = workspace_root();
    let cfg = FlowConfig::load(&root.join("detflow.toml")).expect("workspace detflow.toml");
    let a = analyze(&root, &cfg).expect("analysis 1");
    let b = analyze(&root, &cfg).expect("analysis 2");
    assert_eq!(report::render_json(&a), report::render_json(&b));
}

/// Builds a miniature workspace in the temp dir with a seeded
/// cross-function wall-clock reach: `entry.rs` (deterministic) calls
/// `hatch.rs` (not), which calls `Instant::now`.
fn seeded_tree() -> PathBuf {
    let root = std::env::temp_dir().join(format!("detflow-seeded-{}", std::process::id()));
    let src: &Path = &root.join("src");
    std::fs::create_dir_all(src).expect("create temp tree");
    std::fs::write(
        root.join("detflow.toml"),
        "[scan]\ninclude = [\"src\"]\n\
         [deterministic]\npaths = [\"src/entry.rs\"]\n\
         [artifact]\nstamp = \"SCHEMA_VERSION\"\n\
         [coherence]\ndetlint-config = \"detlint.toml\"\nclippy-config = \"\"\n",
    )
    .expect("write detflow.toml");
    std::fs::write(
        root.join("detlint.toml"),
        "[scan]\ninclude = [\"src\"]\n[deterministic]\npaths = [\"src/entry.rs\"]\n",
    )
    .expect("write detlint.toml");
    std::fs::write(
        src.join("entry.rs"),
        "pub fn run(x: u64) -> u64 {\n    crate::hatch::leak(x)\n}\n",
    )
    .expect("write entry.rs");
    std::fs::write(
        src.join("hatch.rs"),
        "pub fn leak(x: u64) -> u64 {\n    \
         std::time::Instant::now().elapsed().as_secs() ^ x\n}\n",
    )
    .expect("write hatch.rs");
    root
}

#[test]
fn seeded_violation_exits_one_end_to_end() {
    // The same check CI's mutation gate performs, via the real binary:
    // a seeded cross-function reach must exit with code 1 exactly, and
    // the --json report must be byte-identical across runs.
    let root = seeded_tree();
    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_detflow"))
            .arg("--check")
            .arg("--root")
            .arg(&root)
            .args(extra)
            .output()
            .expect("run detflow")
    };
    let human = run(&[]);
    let j1 = run(&["--json"]);
    let j2 = run(&["--json"]);
    std::fs::remove_dir_all(&root).expect("remove temp tree");

    assert_eq!(human.status.code(), Some(1), "violations must exit 1 exactly");
    let text = String::from_utf8(human.stdout).expect("utf8 report");
    assert!(
        text.contains("src/hatch.rs:2: [det-closure]"),
        "missing the seeded crossing:\n{text}"
    );
    assert!(
        text.contains("via bgpscale::entry::run -> bgpscale::hatch::leak"),
        "missing the witness path:\n{text}"
    );
    assert_eq!(j1.status.code(), Some(1));
    assert_eq!(j1.stdout, j2.stdout, "--json must be byte-deterministic");
}

#[test]
fn cli_exit_codes_cover_the_whole_convention() {
    let ws = Command::new(env!("CARGO_BIN_EXE_detflow"))
        .arg("--check")
        .arg("--quiet")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run detflow on the workspace");
    assert_eq!(
        ws.status.code(),
        Some(0),
        "the workspace must be clean:\n{}",
        String::from_utf8_lossy(&ws.stdout)
    );
    let fixtures = Command::new(env!("CARGO_BIN_EXE_detflow"))
        .arg("--fixtures")
        .arg("--root")
        .arg(fixtures_root())
        .output()
        .expect("run detflow --fixtures");
    assert_eq!(
        fixtures.status.code(),
        Some(0),
        "fixture self-test failed:\n{}",
        String::from_utf8_lossy(&fixtures.stdout)
    );
    let usage = Command::new(env!("CARGO_BIN_EXE_detflow"))
        .arg("--no-such-flag")
        .output()
        .expect("run detflow with a bad flag");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}
