//! `detflow` — the call-graph determinism analyzer CLI.
//!
//! ```text
//! detflow [--check] [--fixtures] [--json] [--json-out FILE]
//!         [--root DIR] [--config FILE] [--list-rules] [--quiet]
//!
//! modes:
//!   --check       analyze the workspace under detflow.toml (the default)
//!   --fixtures    self-test: run every seeded fixture case and assert the
//!                 findings equal the `//~`/`#~` markers exactly, in both
//!                 directions (missed detection OR false positive fails)
//!   --list-rules  print the rule table and exit
//!
//! options:
//!   --root DIR    workspace root (default: the current directory; for
//!                 --fixtures: crates/detflow/tests/fixtures under it)
//!   --config FILE analyzer configuration (default: <root>/detflow.toml)
//!   --json        print the machine-readable report to stdout
//!   --json-out F  additionally write the JSON report to F (CI artifact)
//!   --quiet       suppress the scan summary and audited-allow listing
//!
//! exit codes (the workspace-wide convention, shared with detlint and
//! `repro profile --check`):
//!   0  clean — no violations
//!   1  violations found (or fixture self-test failures)
//!   2  usage error, unreadable root, or invalid detflow.toml
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use bgpscale_detflow::{analyze, fixtures, report, FlowConfig, Rule};
use bgpscale_detflow::{EXIT_OK, EXIT_USAGE, EXIT_VIOLATIONS};

struct Options {
    mode: Mode,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    quiet: bool,
}

#[derive(PartialEq, Eq)]
enum Mode {
    Check,
    Fixtures,
    ListRules,
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("detflow: {msg}");
    }
    eprintln!(
        "usage: detflow [--check|--fixtures|--list-rules] [--root DIR] [--config FILE] \
         [--json] [--json-out FILE] [--quiet]\n\
         exit codes: 0 = clean, 1 = violations, 2 = usage/config error"
    );
    ExitCode::from(EXIT_USAGE as u8)
}

fn rule_summary(rule: Rule) -> &'static str {
    match rule {
        Rule::DetClosure => {
            "no call path from a deterministic-tier pub fn may reach a wall-side \
             module or external wall/env API"
        }
        Rule::PanicSurface => {
            "functions reachable from the hot-path roots must not unwrap/expect/\
             panic!/slice-index without an audited invariant"
        }
        Rule::ArtifactContract => {
            "file writers must flow through the schema stamp; artifact-writing \
             binaries must use the shared exit constants"
        }
        Rule::ConfigCoherence => {
            "detflow.toml, detlint.toml, and clippy.toml must agree on tiers, \
             wall-side exemptions, and required bans"
        }
        Rule::StaleAllow => "a detflow::allow that suppressed nothing",
        Rule::BadAllow => "a malformed detflow::allow",
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::Check,
        root: None,
        config: None,
        json: false,
        json_out: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.mode = Mode::Check,
            "--fixtures" => opts.mode = Mode::Fixtures,
            "--list-rules" => opts.mode = Mode::ListRules,
            "--json" => opts.json = true,
            "--quiet" => opts.quiet = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--config" => {
                let v = args.next().ok_or("--config needs a file")?;
                opts.config = Some(PathBuf::from(v));
            }
            "--json-out" => {
                let v = args.next().ok_or("--json-out needs a file")?;
                opts.json_out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                // Asking for help is not a usage *error*.
                usage("");
                std::process::exit(EXIT_OK);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => return usage(&msg),
    };
    match opts.mode {
        Mode::ListRules => {
            for rule in Rule::ALL {
                println!("{:22} {}", rule.id(), rule_summary(rule));
            }
            ExitCode::from(EXIT_OK as u8)
        }
        Mode::Fixtures => {
            let root = opts
                .root
                .unwrap_or_else(|| PathBuf::from("crates/detflow/tests/fixtures"));
            if !root.is_dir() {
                return usage(&format!("fixture root {} is not a directory", root.display()));
            }
            match fixtures::run(&root) {
                Ok(rep) => {
                    print!("{}", fixtures::render(&rep));
                    if rep.ok() {
                        ExitCode::from(EXIT_OK as u8)
                    } else {
                        ExitCode::from(EXIT_VIOLATIONS as u8)
                    }
                }
                Err(msg) => usage(&msg),
            }
        }
        Mode::Check => {
            let root = opts.root.unwrap_or_else(|| PathBuf::from("."));
            if !root.is_dir() {
                return usage(&format!("root {} is not a directory", root.display()));
            }
            let config_path = opts.config.unwrap_or_else(|| root.join("detflow.toml"));
            let cfg = match FlowConfig::load(&config_path) {
                Ok(c) => c,
                Err(msg) => return usage(&msg),
            };
            let analysis = match analyze(&root, &cfg) {
                Ok(a) => a,
                Err(e) => return usage(&format!("analyzing {}: {e}", root.display())),
            };
            if let Some(path) = &opts.json_out {
                if let Err(e) = std::fs::write(path, report::render_json(&analysis)) {
                    return usage(&format!("writing {}: {e}", path.display()));
                }
            }
            if opts.json {
                print!("{}", report::render_json(&analysis));
            } else {
                print!("{}", report::render_human(&analysis, opts.quiet));
            }
            if analysis.ok() {
                ExitCode::from(EXIT_OK as u8)
            } else {
                ExitCode::from(EXIT_VIOLATIONS as u8)
            }
        }
    }
}
