//! Fixture self-test: seeded-bad trees with `//~ rule` markers.
//!
//! Each immediate subdirectory of the fixtures root holding a
//! `detflow.toml` is one **case**: a miniature workspace with its own
//! configs. Expected findings are marked in-band —
//!
//! * `//~ rule-id` trailing a line in a `.rs` file,
//! * `#~ rule-id` trailing a line in a `.toml` file (coherence findings
//!   anchor in config files),
//!
//! and a marker line may list several space-separated rule ids. The
//! self-test runs the full analyzer over each case and demands **exact
//! (file, line, rule) set equality in both directions**: a rule that
//! fails to fire where marked is a missed detection, a finding without
//! a marker is a false positive, and either direction fails the run.

use std::path::{Path, PathBuf};

use crate::config::FlowConfig;
use crate::passes::analyze;
use crate::Rule;

/// One fixture case's outcome.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Subdirectory name.
    pub name: String,
    /// Markers present but not reported: missed detections.
    pub missed: Vec<(String, usize, Rule)>,
    /// Findings without a marker: false positives.
    pub unexpected: Vec<(String, usize, Rule)>,
    /// Total markers checked.
    pub expected: usize,
}

impl CaseResult {
    pub fn ok(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

/// The whole self-test run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub cases: Vec<CaseResult>,
    /// Total marker count across cases.
    pub checked: usize,
}

impl Report {
    pub fn ok(&self) -> bool {
        !self.cases.is_empty() && self.cases.iter().all(CaseResult::ok)
    }
}

/// Runs every fixture case under `fixroot`.
pub fn run(fixroot: &Path) -> Result<Report, String> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixroot)
        .map_err(|e| format!("cannot read {}: {e}", fixroot.display()))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("walk error under {}: {e}", fixroot.display()))?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("detflow.toml").is_file())
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        return Err(format!(
            "no fixture cases (subdirectories with a detflow.toml) under {}",
            fixroot.display()
        ));
    }
    let mut report = Report::default();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        let cfg = FlowConfig::load(&dir.join("detflow.toml"))?;
        let analysis = analyze(&dir, &cfg)?;
        let mut got: Vec<(String, usize, Rule)> = analysis
            .diagnostics
            .iter()
            .map(|d| (d.file.clone(), d.line, d.rule))
            .collect();
        got.sort();
        got.dedup();
        let mut expected = collect_markers(&dir)?;
        expected.sort();
        expected.dedup();
        let missed: Vec<_> = expected.iter().filter(|m| !got.contains(m)).cloned().collect();
        let unexpected: Vec<_> = got.iter().filter(|g| !expected.contains(g)).cloned().collect();
        report.checked += expected.len();
        report.cases.push(CaseResult {
            name,
            missed,
            unexpected,
            expected: expected.len(),
        });
    }
    Ok(report)
}

/// Collects `//~` / `#~` markers from every `.rs` and `.toml` file.
fn collect_markers(dir: &Path) -> Result<Vec<(String, usize, Rule)>, String> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, usize, Rule)>) -> Result<(), String> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("walk error under {}: {e}", dir.display()))?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(root, &path, out)?;
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .map_err(|_| "path outside fixture root".to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            let marker = if rel.ends_with(".rs") {
                "//~"
            } else if rel.ends_with(".toml") {
                "#~"
            } else {
                continue;
            };
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            for (idx, line) in text.lines().enumerate() {
                let Some(pos) = line.find(marker) else {
                    continue;
                };
                for id in line[pos + marker.len()..].split_whitespace() {
                    let rule = Rule::from_id(id).ok_or_else(|| {
                        format!("{rel}:{}: unknown rule `{id}` in fixture marker", idx + 1)
                    })?;
                    out.push((rel.clone(), idx + 1, rule));
                }
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out)?;
    Ok(out)
}

/// Renders the self-test outcome.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for case in &report.cases {
        let verdict = if case.ok() { "ok" } else { "FAIL" };
        out.push_str(&format!(
            "fixture case `{}`: {} ({} marker(s))\n",
            case.name, verdict, case.expected
        ));
        for (f, l, r) in &case.missed {
            out.push_str(&format!("  MISSED: expected [{r}] at {f}:{l}\n"));
        }
        for (f, l, r) in &case.unexpected {
            out.push_str(&format!("  FALSE POSITIVE: unexpected [{r}] at {f}:{l}\n"));
        }
    }
    out.push_str(&format!(
        "detflow fixtures: {} ({} marker(s) across {} case(s))\n",
        if report.ok() { "OK" } else { "FAIL" },
        report.checked,
        report.cases.len()
    ));
    out
}
