//! `detflow.toml`: the analyzer's checked-in configuration.
//!
//! The file format is the same TOML subset as `detlint.toml` — the
//! comment stripping and array parsing come from
//! [`bgpscale_detlint::config`], so the two tools can never diverge on
//! syntax — but the sections are detflow's own:
//!
//! ```toml
//! [scan]
//! include = ["crates", "src"]
//! exclude = ["crates/vendor", "target"]
//!
//! [deterministic]
//! # The tier map: must agree with detlint.toml (config-coherence).
//! paths = ["crates/simkernel/src", "crates/core/src"]
//!
//! [wall-side]
//! # Sanctioned wall-side modules: the deterministic closure must not
//! # reach these except through an audited detflow::allow crossing.
//! modules = ["simkernel::wallclock", "simkernel::rss"]
//!
//! [hot-paths]
//! # Roots of the panic-surface pass, matched by qualified-name suffix.
//! roots = ["core::cevent::run_c_event"]
//!
//! [artifact]
//! stamp = "SCHEMA_VERSION"
//! # Each entry is an alternation: one alternative must be mentioned in
//! # the closure of every artifact-writing binary's main.
//! exit-constants = ["EXIT_OK", "EXIT_VIOLATIONS|EXIT_FAIL", "EXIT_USAGE"]
//!
//! [coherence]
//! detlint-config = "detlint.toml"
//! clippy-config = "clippy.toml"
//! clippy-required = ["std::collections::HashMap"]
//!
//! [resolve]
//! # Method names resolved to *no* workspace impl on purpose (too
//! # ambiguous to attribute); each entry should carry a comment saying
//! # why.
//! opaque-methods = []
//! ```
//!
//! Unknown sections or keys are **errors** (exit 2), mirroring detlint:
//! a typo can never silently disable a pass.

use std::path::Path;

use bgpscale_detlint::config::{parse_string_array, strip_toml_comment};

/// Parsed `detflow.toml`.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Directories (relative to the root) to walk for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Path prefixes holding deterministic-tier code; their `pub fn`s
    /// are the entry points of the deterministic-closure pass.
    pub deterministic: Vec<String>,
    /// Module paths (`crate::module`) of sanctioned wall-side code.
    pub wall_side: Vec<String>,
    /// Qualified-name suffixes of the panic-surface roots.
    pub hot_roots: Vec<String>,
    /// The identifier every artifact writer must flow through.
    pub stamp: String,
    /// Exit-convention constants; each entry is a `|`-separated
    /// alternation.
    pub exit_constants: Vec<String>,
    /// Path (relative to the root) of the detlint config to reconcile.
    pub detlint_config: String,
    /// Path (relative to the root) of the clippy config to reconcile.
    pub clippy_config: String,
    /// Paths that must appear (as quoted strings) in the clippy config.
    pub clippy_required: Vec<String>,
    /// Method names deliberately left unresolved by the call graph.
    pub opaque_methods: Vec<String>,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            include: vec![".".to_string()],
            exclude: Vec::new(),
            deterministic: Vec::new(),
            wall_side: Vec::new(),
            hot_roots: Vec::new(),
            stamp: "SCHEMA_VERSION".to_string(),
            exit_constants: Vec::new(),
            detlint_config: "detlint.toml".to_string(),
            clippy_config: "clippy.toml".to_string(),
            clippy_required: Vec::new(),
            opaque_methods: Vec::new(),
        }
    }
}

impl FlowConfig {
    /// Reads and parses a config file.
    pub fn load(path: &Path) -> Result<FlowConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        FlowConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses config text.
    pub fn parse(text: &str) -> Result<FlowConfig, String> {
        let mut cfg = FlowConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
                section = name.trim().to_string();
                match section.as_str() {
                    "scan" | "deterministic" | "wall-side" | "hot-paths" | "artifact"
                    | "coherence" | "resolve" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_toml_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(format!("line {lineno}: unterminated array for `{key}`"));
                }
            }
            cfg.apply(&section, &key, &value)
                .map_err(|e| format!("line {lineno}: {e}"))?;
        }
        if cfg.include.is_empty() {
            return Err("`[scan] include` must not be empty".to_string());
        }
        if cfg.stamp.is_empty() {
            return Err("`[artifact] stamp` must not be empty".to_string());
        }
        Ok(cfg)
    }

    fn apply(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        match (section, key) {
            ("scan", "include") => self.include = parse_string_array(value)?,
            ("scan", "exclude") => self.exclude = parse_string_array(value)?,
            ("deterministic", "paths") => self.deterministic = parse_string_array(value)?,
            ("wall-side", "modules") => self.wall_side = parse_string_array(value)?,
            ("hot-paths", "roots") => self.hot_roots = parse_string_array(value)?,
            ("artifact", "stamp") => self.stamp = parse_quoted(value)?,
            ("artifact", "exit-constants") => self.exit_constants = parse_string_array(value)?,
            ("coherence", "detlint-config") => self.detlint_config = parse_quoted(value)?,
            ("coherence", "clippy-config") => self.clippy_config = parse_quoted(value)?,
            ("coherence", "clippy-required") => self.clippy_required = parse_string_array(value)?,
            ("resolve", "opaque-methods") => self.opaque_methods = parse_string_array(value)?,
            ("", _) => return Err(format!("key `{key}` outside any section")),
            (s, k) => return Err(format!("unknown key `{k}` in section [{s}]")),
        }
        Ok(())
    }

    /// True if `rel` lies under a deterministic-tier prefix.
    pub fn is_deterministic(&self, rel: &str) -> bool {
        bgpscale_detlint::config::Config::path_matches(rel, &self.deterministic)
    }

    /// True if the path is excluded from scanning.
    pub fn is_excluded(&self, rel: &str) -> bool {
        bgpscale_detlint::config::Config::path_matches(rel, &self.exclude)
    }

    /// True if a function with this qualified name lives in a sanctioned
    /// wall-side module.
    pub fn is_wall_side(&self, qname: &str) -> bool {
        self.wall_side
            .iter()
            .any(|m| qname == m || qname.starts_with(&format!("{m}::")))
    }

    /// True if this qualified name is a panic-surface root.
    pub fn is_hot_root(&self, qname: &str) -> bool {
        self.hot_roots
            .iter()
            .any(|r| qname == r || qname.ends_with(&format!("::{r}")))
    }

    /// Every exit-constant alternative, flattened (for mention tracking).
    pub fn exit_alternatives(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .exit_constants
            .iter()
            .flat_map(|g| g.split('|').map(|s| s.trim().to_string()))
            .filter(|s| !s.is_empty())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Parses a single `"quoted string"` value.
fn parse_quoted(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[scan]
include = ["crates"]
exclude = ["target"]

[deterministic]
paths = ["crates/core/src"]

[wall-side]
modules = ["simkernel::wallclock"]

[hot-paths]
roots = ["core::cevent::run_c_event", "EventQueue::push"]

[artifact]
stamp = "SCHEMA_VERSION"
exit-constants = ["EXIT_OK", "EXIT_VIOLATIONS|EXIT_FAIL"]

[coherence]
detlint-config = "detlint.toml"
clippy-config = "clippy.toml"
clippy-required = ["std::collections::HashMap"]

[resolve]
opaque-methods = ["drop"]
"#;

    #[test]
    fn parses_all_sections() {
        let cfg = FlowConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.include, ["crates"]);
        assert!(cfg.is_deterministic("crates/core/src/sim.rs"));
        assert!(cfg.is_wall_side("simkernel::wallclock::Stopwatch::start"));
        assert!(!cfg.is_wall_side("simkernel::wallclock_adjacent::f"));
        assert!(cfg.is_hot_root("core::cevent::run_c_event"));
        assert!(cfg.is_hot_root("simkernel::queue::EventQueue::push"));
        assert!(!cfg.is_hot_root("simkernel::queue::EventQueue::push_back"));
        assert_eq!(cfg.stamp, "SCHEMA_VERSION");
        assert_eq!(
            cfg.exit_alternatives(),
            ["EXIT_FAIL", "EXIT_OK", "EXIT_VIOLATIONS"]
        );
        assert_eq!(cfg.opaque_methods, ["drop"]);
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(FlowConfig::parse("[scn]\ninclude = [\"x\"]").is_err());
        assert!(FlowConfig::parse("[scan]\nincl = [\"x\"]").is_err());
        assert!(FlowConfig::parse("[artifact]\nstamp = unquoted").is_err());
        assert!(FlowConfig::parse("include = [\"before any section\"]").is_err());
    }

    #[test]
    fn empty_stamp_is_rejected() {
        assert!(FlowConfig::parse("[scan]\ninclude = [\"x\"]\n[artifact]\nstamp = \"\"").is_err());
    }
}
