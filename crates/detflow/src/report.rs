//! Analysis results and their renderings.
//!
//! The JSON report is hand-rolled and **byte-deterministic**: files are
//! walked sorted, findings and allows are emitted in (file, line, rule)
//! order, and no timestamps, absolute paths, or map iteration orders can
//! leak in. Two runs over the same tree must produce identical bytes —
//! the integration suite asserts it.

use crate::Rule;

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based anchor line (call site, fn declaration, or config line).
    pub line: usize,
    pub message: String,
    /// Qualified-name chain from an entry point / hot root to the
    /// finding, when the pass walked one. Empty otherwise.
    pub witness: Vec<String>,
}

impl Finding {
    /// `file:line: [rule] message` single-line rendering.
    pub fn render(&self) -> String {
        let mut s = format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message);
        if !self.witness.is_empty() {
            s.push_str(&format!("\n    via {}", self.witness.join(" -> ")));
        }
        s
    }
}

/// One audited (used) suppression.
#[derive(Clone, Debug)]
pub struct AllowRecord {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// The complete result of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Every scanned file, relative to the root, sorted.
    pub files: Vec<String>,
    /// Function nodes in the graph.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Deterministic-tier public entry points.
    pub entry_points: usize,
    /// Matched hot-path roots.
    pub hot_roots: usize,
    /// Artifact-writing functions.
    pub writers: usize,
    /// All violations, in (file, line, rule) order.
    pub diagnostics: Vec<Finding>,
    /// All used allows, in (file, line, rule) order.
    pub allows: Vec<AllowRecord>,
}

impl Analysis {
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. Stamped with
/// [`crate::SCHEMA_VERSION`] like every other artifact this workspace
/// writes.
pub fn render_json(a: &Analysis) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"schema_version\": {},\n", crate::SCHEMA_VERSION));
    j.push_str(&format!("  \"ok\": {},\n", a.ok()));
    j.push_str(&format!("  \"files\": {},\n", a.files.len()));
    j.push_str(&format!("  \"functions\": {},\n", a.functions));
    j.push_str(&format!("  \"edges\": {},\n", a.edges));
    j.push_str(&format!("  \"entry_points\": {},\n", a.entry_points));
    j.push_str(&format!("  \"hot_roots\": {},\n", a.hot_roots));
    j.push_str(&format!("  \"writers\": {},\n", a.writers));
    j.push_str("  \"violations\": [");
    for (i, d) in a.diagnostics.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"witness\": [{}]}}",
            d.rule,
            escape(&d.file),
            d.line,
            escape(&d.message),
            d.witness
                .iter()
                .map(|w| format!("\"{}\"", escape(w)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if a.diagnostics.is_empty() {
        j.push_str("],\n");
    } else {
        j.push_str("\n  ],\n");
    }
    j.push_str("  \"allows\": [");
    for (i, al) in a.allows.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            al.rule,
            escape(&al.file),
            al.line,
            escape(&al.reason)
        ));
    }
    if a.allows.is_empty() {
        j.push_str("]\n");
    } else {
        j.push_str("\n  ]\n");
    }
    j.push_str("}\n");
    j
}

/// Renders the human report.
pub fn render_human(a: &Analysis, quiet: bool) -> String {
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "detflow: {} files, {} functions, {} edges; {} entry points, {} hot roots, \
             {} writers\n",
            a.files.len(),
            a.functions,
            a.edges,
            a.entry_points,
            a.hot_roots,
            a.writers
        ));
    }
    for d in &a.diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    if !quiet && !a.allows.is_empty() {
        out.push_str(&format!("{} audited allow(s):\n", a.allows.len()));
        for al in &a.allows {
            out.push_str(&format!(
                "  {}:{}: [{}] {}\n",
                al.file, al.line, al.rule, al.reason
            ));
        }
    }
    if a.ok() {
        out.push_str("detflow: OK\n");
    } else {
        out.push_str(&format!("detflow: FAIL ({} violation(s))\n", a.diagnostics.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            files: vec!["a.rs".to_string()],
            functions: 2,
            edges: 1,
            entry_points: 1,
            hot_roots: 0,
            writers: 0,
            diagnostics: vec![Finding {
                rule: Rule::DetClosure,
                file: "a.rs".to_string(),
                line: 3,
                message: "reaches \"wall\"".to_string(),
                witness: vec!["a::f".to_string(), "b::g".to_string()],
            }],
            allows: vec![AllowRecord {
                rule: Rule::PanicSurface,
                file: "a.rs".to_string(),
                line: 9,
                reason: "bounded".to_string(),
            }],
        }
    }

    #[test]
    fn json_is_stamped_escaped_and_balanced() {
        let j = render_json(&sample());
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("reaches \\\"wall\\\""));
        assert!(j.contains("\"witness\": [\"a::f\", \"b::g\"]"));
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn human_report_mentions_verdict_and_witness() {
        let h = render_human(&sample(), false);
        assert!(h.contains("detflow: FAIL (1 violation(s))"));
        assert!(h.contains("via a::f -> b::g"));
        assert!(h.contains("[panic-surface] bounded"));
        let empty = render_human(&Analysis::default(), true);
        assert_eq!(empty, "detflow: OK\n");
    }
}
