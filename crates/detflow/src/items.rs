//! Item extraction: one source file → functions, imports, call sites.
//!
//! This is deliberately **not** a Rust parser. It is a scope-tracking
//! token scanner built on the shared [`bgpscale_detlint::lex`] lexer,
//! just strong enough to recover the facts the graph passes need:
//!
//! * which functions exist (`fn` items, methods inside `impl`/`trait`
//!   blocks, nested modules), with stable fully qualified names like
//!   `bgp::node::BgpNode::handle_update_at` derived from the file path
//!   and the scope stack;
//! * what each function calls — qualified paths (`simkernel::rng::mix`),
//!   bare names resolved later against imports, and `.method()` calls
//!   kept as method names for conservative resolution;
//! * panic sources in each body (`unwrap`/`expect`, `panic!`-family
//!   macros, slice indexing);
//! * artifact facts: direct file-writing calls, mentions of the schema
//!   stamp (checked on the **raw** line so a stamp interpolated into a
//!   format string still counts), and mentions of exit constants;
//! * `// detflow::allow(rule, reason = "...")` audited suppressions,
//!   with the same trailing/preceding coverage semantics as detlint.
//!
//! Anything the scanner cannot see is treated conservatively:
//! `macro_rules!` bodies are opaque (no items or calls are extracted
//! from them), `#[cfg(test)]` blocks are skipped entirely, and calls
//! that resolve nowhere stay in the graph as external/opaque edges
//! rather than disappearing.

use std::collections::BTreeSet;

use bgpscale_detlint::lex::{parse_allow_directive, tokenize, Lexer, Token};

use crate::Rule;

/// The comment prefix that makes a suppression a *detflow* directive.
pub const ALLOW_PREFIX: &str = "detflow::allow";

/// Method names whose call panics on `None`/`Err`.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that abort the current path.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that look like calls but are control flow or ubiquitous
/// enum constructors — never graph edges.
const NON_CALLS: [&str; 21] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "unsafe", "let",
    "mut", "ref", "break", "continue", "where", "dyn", "Some", "Ok", "Err",
];

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// A (possibly one-segment) path call: `foo(..)`, `a::b::foo(..)`.
    Path(Vec<String>),
    /// A `.name(..)` method call; the receiver type is unknown.
    Method(String),
    /// A `name!(..)` macro invocation.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: usize,
}

/// A way a statement can panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    Unwrap,
    Expect,
    PanicMacro,
    SliceIndex,
}

impl PanicKind {
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic-macro",
            PanicKind::SliceIndex => "slice-index",
        }
    }
}

/// One panic source inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    pub kind: PanicKind,
    /// 1-based line of the panic source.
    pub line: usize,
}

/// One parsed function (or method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Fully qualified name: `crate::module::[Owner::]name`.
    pub qname: String,
    /// The unqualified name.
    pub name: String,
    /// The `impl`/`trait` type this is a method of, if any.
    pub owner: Option<String>,
    /// 1-based line of the declaration (the line holding `fn`).
    pub line: usize,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// A binary entry point (`fn main` in a `main.rs`/`src/bin` file).
    pub is_main: bool,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    /// Lines holding a direct file-writing call (`fs::write`,
    /// `File::create`, `OpenOptions`).
    pub writes: Vec<usize>,
    /// The schema-stamp identifier appears in the body (raw-line check,
    /// so format-string interpolation counts).
    pub mentions_stamp: bool,
    /// Exit-constant identifiers appearing as body tokens.
    pub mentions: BTreeSet<String>,
}

/// One parsed `use` declaration.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// Name the import binds (last segment or `as` alias).
    pub alias: String,
    /// Normalized path segments (crate-relative prefixes resolved).
    pub path: Vec<String>,
}

/// One `detflow::allow` directive.
#[derive(Clone, Debug)]
pub struct FlowAllow {
    pub rule: Rule,
    pub reason: String,
    /// 1-based line of the comment itself.
    pub decl_line: usize,
    /// 1-based line the allow covers (next code line for a comment-only
    /// line, the line itself for a trailing comment).
    pub covers_line: usize,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Path relative to the scan root, `/`-separated.
    pub rel: String,
    /// Crate identifier derived from the path (`crates/bgp/src/…` → `bgp`).
    pub crate_id: String,
    /// Module path of the file within the crate.
    pub modules: Vec<String>,
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
    /// Normalized glob-import prefixes (`use a::b::*`).
    pub globs: Vec<Vec<String>>,
    pub allows: Vec<FlowAllow>,
    /// Lines holding malformed `detflow::allow` directives.
    pub bad_allows: Vec<usize>,
}

/// The identifiers the parser watches for inside bodies.
#[derive(Clone, Debug, Default)]
pub struct Needles {
    /// The artifact schema stamp (e.g. `SCHEMA_VERSION`).
    pub stamp: String,
    /// Exit-constant alternatives (e.g. `EXIT_OK`).
    pub exits: Vec<String>,
}

/// Maps a workspace-relative file path to `(crate_id, module_path)`.
///
/// `crates/bgp/src/node.rs` → `("bgp", ["node"])`,
/// `crates/experiments/src/bin/repro.rs` → `("experiments", ["bin", "repro"])`,
/// `src/lib.rs` → `("bgpscale", [])`, and for flat fixture trees
/// `det/entry.rs` → `("det", ["entry"])`.
pub fn module_of(rel: &str) -> (String, Vec<String>) {
    let mut segs: Vec<&str> = rel.split('/').filter(|s| !s.is_empty()).collect();
    if segs.first() == Some(&"crates") {
        segs.remove(0);
    }
    let crate_id = if segs.first() == Some(&"src") {
        "bgpscale".to_string()
    } else if segs.len() > 1 {
        segs.remove(0).replace('-', "_")
    } else {
        "bgpscale".to_string()
    };
    let mut modules: Vec<String> = segs
        .into_iter()
        .filter(|s| *s != "src")
        .map(|s| s.trim_end_matches(".rs").to_string())
        .collect();
    if matches!(modules.last().map(String::as_str), Some("lib" | "mod")) {
        modules.pop();
    }
    (crate_id, modules)
}

/// True when `needle` occurs in `hay` as a whole identifier.
fn word_in(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre = start > 0 && is_word_byte(bytes[start - 1]);
        let post = end < bytes.len() && is_word_byte(bytes[end]);
        if !pre && !post {
            return true;
        }
        from = end;
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident(text: &str) -> bool {
    text.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// What kind of item a pending head will open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HeadKind {
    Fn,
    Impl,
    Trait,
    Mod,
    Macro,
    Other,
}

/// An item head being accumulated between its keyword and its body.
struct Head {
    kind: HeadKind,
    toks: Vec<String>,
    line: usize,
    is_pub: bool,
    paren: i32,
    bracket: i32,
    angle: i32,
    brace: i32,
}

/// One entry of the scope stack. `at` is the brace depth *inside* the
/// scope, so a `}` bringing the depth below `at` closes it.
struct Scope {
    kind: ScopeKind,
    at: usize,
}

enum ScopeKind {
    Mod(String),
    /// An `impl`/`trait` block and the owning type name.
    Owner(String),
    /// An open function body: index into `FileItems::fns`.
    Fn(usize),
    /// A `macro_rules!` body: fully opaque.
    Macro,
    Other,
}

/// Parses one file. Infallible by design: unparseable constructs
/// degrade to missing items or external edges, never to a hard error.
pub fn parse_file(rel: &str, text: &str, needles: &Needles) -> FileItems {
    let (crate_id, modules) = module_of(rel);
    let mut out = FileItems {
        rel: rel.to_string(),
        crate_id,
        modules,
        ..FileItems::default()
    };

    let mut lexer = Lexer::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut sdepth: usize = 0;
    let mut pending_head: Option<Head> = None;
    let mut pending_use: Option<Vec<String>> = None;

    // #[cfg(test)] skipping: identical mechanics to detlint's scanner.
    let mut line_depth: usize = 0;
    let mut skip_above: Option<usize> = None;
    let mut cfg_test_pending = false;

    // Allows from comment-only lines waiting for their next code line.
    let mut carried: Vec<(Rule, String, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = lexer.strip_line(raw);
        let opens = line.code.matches('{').count();
        let closes = line.code.matches('}').count();
        let depth_before = line_depth;
        line_depth = (line_depth + opens).saturating_sub(closes);

        if let Some(limit) = skip_above {
            if line_depth <= limit {
                skip_above = None;
            }
            continue;
        }
        let squished: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if squished.contains("#[cfg(test)]") {
            if line_depth > depth_before {
                skip_above = Some(depth_before);
            } else {
                cfg_test_pending = true;
            }
            continue;
        }
        if cfg_test_pending {
            if line_depth > depth_before {
                skip_above = Some(depth_before);
                cfg_test_pending = false;
            } else if opens > 0 || squished.ends_with(';') {
                cfg_test_pending = false;
            }
            continue;
        }

        let has_code = line.code.chars().any(|c| !c.is_whitespace());
        if let Some(comment) = &line.comment {
            match parse_allow(comment) {
                Some(Ok((rule, reason))) => {
                    if has_code {
                        out.allows.push(FlowAllow {
                            rule,
                            reason,
                            decl_line: lineno,
                            covers_line: lineno,
                        });
                    } else {
                        carried.push((rule, reason, lineno));
                    }
                }
                Some(Err(())) => out.bad_allows.push(lineno),
                None => {}
            }
        }
        if !has_code {
            continue;
        }
        for (rule, reason, decl_line) in carried.drain(..) {
            out.allows.push(FlowAllow {
                rule,
                reason,
                decl_line,
                covers_line: lineno,
            });
        }

        let toks = tokenize(&line.code);
        scan_tokens(
            &mut out,
            &toks,
            lineno,
            needles,
            &mut scopes,
            &mut sdepth,
            &mut pending_head,
            &mut pending_use,
        );

        // Raw-line stamp check for the innermost open function: a stamp
        // interpolated into a format string is invisible in stripped
        // tokens, so look at the raw text up to any trailing comment.
        if let Some(fi) = innermost_fn(&scopes) {
            let prefix: String = match line.comment_col {
                Some(col) => raw.chars().take(col).collect(),
                None => raw.to_string(),
            };
            if word_in(&prefix, &needles.stamp) {
                out.fns[fi].mentions_stamp = true;
            }
        }
    }
    out
}

fn innermost_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(i) => Some(i),
        _ => None,
    })
}

fn innermost_owner(scopes: &[Scope]) -> Option<&str> {
    scopes.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::Owner(name) => Some(name.as_str()),
        _ => None,
    })
}

#[allow(clippy::too_many_arguments)]
fn scan_tokens(
    out: &mut FileItems,
    toks: &[Token],
    lineno: usize,
    needles: &Needles,
    scopes: &mut Vec<Scope>,
    sdepth: &mut usize,
    pending_head: &mut Option<Head>,
    pending_use: &mut Option<Vec<String>>,
) {
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i].text.as_str();

        // Inside a macro_rules! body: only track braces to find its end.
        if matches!(scopes.last().map(|s| &s.kind), Some(ScopeKind::Macro)) {
            match t {
                "{" => *sdepth += 1,
                "}" => {
                    *sdepth = sdepth.saturating_sub(1);
                    pop_scopes(scopes, *sdepth);
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        if let Some(use_toks) = pending_use.as_mut() {
            if t == ";" {
                let toks = std::mem::take(use_toks);
                *pending_use = None;
                finish_use(out, &toks, scopes);
            } else {
                use_toks.push(t.to_string());
            }
            i += 1;
            continue;
        }

        if let Some(head) = pending_head.as_mut() {
            let closed = feed_head(head, t);
            match closed {
                HeadEnd::Body => {
                    let head = pending_head.take().expect("head present");
                    *sdepth += 1;
                    let scope = open_scope(out, head, lineno, scopes);
                    scopes.push(Scope {
                        kind: scope,
                        at: *sdepth,
                    });
                }
                HeadEnd::Decl => {
                    let head = pending_head.take().expect("head present");
                    if head.kind == HeadKind::Fn {
                        // Trait-required method: a node without a body.
                        push_fn(out, &head, scopes);
                    }
                }
                HeadEnd::Open => {}
            }
            i += 1;
            continue;
        }

        match t {
            "use" => *pending_use = Some(Vec::new()),
            "fn" | "impl" | "trait" | "mod" | "struct" | "enum" | "union" => {
                let kind = match t {
                    "fn" => HeadKind::Fn,
                    "impl" => HeadKind::Impl,
                    "trait" => HeadKind::Trait,
                    "mod" => HeadKind::Mod,
                    _ => HeadKind::Other,
                };
                *pending_head = Some(Head {
                    kind,
                    toks: vec![t.to_string()],
                    line: lineno,
                    is_pub: has_pub_before(toks, i),
                    paren: 0,
                    bracket: 0,
                    angle: 0,
                    brace: 0,
                });
            }
            "macro_rules" if toks.get(i + 1).map(|n| n.text.as_str()) == Some("!") => {
                *pending_head = Some(Head {
                    kind: HeadKind::Macro,
                    toks: vec![t.to_string()],
                    line: lineno,
                    is_pub: false,
                    paren: 0,
                    bracket: 0,
                    angle: 0,
                    brace: 0,
                });
                i += 1; // consume the `!` as part of the head
            }
            "{" => *sdepth += 1,
            "}" => {
                *sdepth = sdepth.saturating_sub(1);
                pop_scopes(scopes, *sdepth);
            }
            "[" => {
                let indexing = i > 0
                    && match toks[i - 1].text.as_str() {
                        ")" | "]" => true,
                        // Identifier or tuple-field receiver (`w.0[1]`).
                        prev => {
                            (is_ident(prev) && !NON_CALLS.contains(&prev))
                                || prev.chars().next().is_some_and(|c| c.is_ascii_digit())
                        }
                    };
                if indexing {
                    if let Some(fi) = innermost_fn(scopes) {
                        out.fns[fi].panics.push(PanicSite {
                            kind: PanicKind::SliceIndex,
                            line: lineno,
                        });
                    }
                }
            }
            ident if is_ident(ident) => {
                let next = toks.get(i + 1).map(|n| n.text.as_str());
                if needles.exits.iter().any(|e| e == ident) {
                    if let Some(fi) = innermost_fn(scopes) {
                        out.fns[fi].mentions.insert(ident.to_string());
                    }
                }
                if next == Some("!") {
                    if let Some(fi) = innermost_fn(scopes) {
                        if PANIC_MACROS.contains(&ident) {
                            out.fns[fi].panics.push(PanicSite {
                                kind: PanicKind::PanicMacro,
                                line: lineno,
                            });
                        }
                        out.fns[fi].calls.push(CallSite {
                            kind: CallKind::Macro(ident.to_string()),
                            line: lineno,
                        });
                    }
                    i += 1; // skip the `!`
                } else if next == Some("(") && !NON_CALLS.contains(&ident) {
                    record_call(out, toks, i, lineno, scopes);
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// What feeding one token into a head produced.
enum HeadEnd {
    /// Still inside the head.
    Open,
    /// The body `{` was reached (already counted by the caller).
    Body,
    /// The head ended with `;` (declaration only).
    Decl,
}

fn feed_head(head: &mut Head, t: &str) -> HeadEnd {
    let balanced =
        head.paren == 0 && head.bracket == 0 && head.angle == 0 && head.brace == 0;
    match t {
        "{" if balanced => return HeadEnd::Body,
        ";" if head.paren == 0 && head.bracket == 0 && head.brace == 0 => return HeadEnd::Decl,
        "(" => head.paren += 1,
        ")" => head.paren -= 1,
        "[" => head.bracket += 1,
        "]" => head.bracket -= 1,
        "<" => head.angle += 1,
        // `->` is an arrow, not a generic close.
        ">" if head.toks.last().map(String::as_str) != Some("-") => {
            head.angle = (head.angle - 1).max(0);
        }
        "{" => head.brace += 1, // const-generic `{ N }` inside the head
        "}" => head.brace -= 1,
        _ => {}
    }
    head.toks.push(t.to_string());
    HeadEnd::Open
}

/// Scans backwards on the current line for a `pub` qualifier.
fn has_pub_before(toks: &[Token], i: usize) -> bool {
    const SKIP: [&str; 10] =
        ["(", ")", "crate", "super", "self", "in", "const", "unsafe", "extern", "async"];
    for t in toks[..i].iter().rev() {
        let t = t.text.as_str();
        if t == "pub" {
            return true;
        }
        if !SKIP.contains(&t) {
            return false;
        }
    }
    false
}

/// Closes scopes whose interior depth is now above the current depth.
fn pop_scopes(scopes: &mut Vec<Scope>, sdepth: usize) {
    while scopes.last().is_some_and(|s| s.at > sdepth) {
        scopes.pop();
    }
}

/// Turns a completed head (whose body `{` was just consumed) into the
/// scope it opens, registering `fn` items as graph nodes.
fn open_scope(out: &mut FileItems, head: Head, _lineno: usize, scopes: &[Scope]) -> ScopeKind {
    match head.kind {
        HeadKind::Fn => {
            let idx = push_fn(out, &head, scopes);
            ScopeKind::Fn(idx)
        }
        HeadKind::Impl => ScopeKind::Owner(impl_owner(&head.toks)),
        HeadKind::Trait => ScopeKind::Owner(ident_after(&head.toks, "trait")),
        HeadKind::Mod => ScopeKind::Mod(ident_after(&head.toks, "mod")),
        HeadKind::Macro => ScopeKind::Macro,
        HeadKind::Other => ScopeKind::Other,
    }
}

/// Registers a function node and returns its index.
fn push_fn(out: &mut FileItems, head: &Head, scopes: &[Scope]) -> usize {
    let name = ident_after(&head.toks, "fn");
    let owner = innermost_owner(scopes).map(str::to_string);
    let mut path: Vec<String> = vec![out.crate_id.clone()];
    path.extend(out.modules.iter().cloned());
    for s in scopes {
        if let ScopeKind::Mod(m) = &s.kind {
            path.push(m.clone());
        }
    }
    if let Some(o) = &owner {
        path.push(o.clone());
    }
    // Nested `fn` inside a function body: qualify under the enclosing
    // function so names cannot collide with siblings.
    if let Some(fi) = innermost_fn(scopes) {
        path.push(out.fns[fi].name.clone());
    }
    path.push(name.clone());
    let qname = path.join("::");
    let is_main = name == "main"
        && (out.modules.last().map(String::as_str) == Some("main")
            || out.modules.iter().any(|m| m == "bin"));
    out.fns.push(FnItem {
        qname,
        name,
        owner,
        line: head.line,
        is_pub: head.is_pub,
        is_main,
        calls: Vec::new(),
        panics: Vec::new(),
        writes: Vec::new(),
        mentions_stamp: false,
        mentions: BTreeSet::new(),
    });
    out.fns.len() - 1
}

/// First identifier following `kw` in a head's tokens.
fn ident_after(toks: &[String], kw: &str) -> String {
    let mut seen = false;
    for t in toks {
        if seen && is_ident(t) {
            return t.clone();
        }
        if t == kw {
            seen = true;
        }
    }
    "<anon>".to_string()
}

/// The owning type of an `impl` head: the type after `for` when present
/// (`impl Display for CellKey`), otherwise the first type name after
/// `impl` and its optional generic parameter list.
fn impl_owner(toks: &[String]) -> String {
    let mut angle = 0i32;
    let mut after_for = None;
    for (i, t) in toks.iter().enumerate() {
        match t.as_str() {
            "<" => angle += 1,
            ">" if toks.get(i.wrapping_sub(1)).map(String::as_str) != Some("-") => {
                angle = (angle - 1).max(0);
            }
            "for" if angle == 0 => after_for = Some(i),
            _ => {}
        }
    }
    let from = after_for.unwrap_or(0);
    // First type identifier at angle depth 0 — skipping generic
    // parameter lists, so `impl<'a> Foo<'a>` owns `Foo`, not `'a`.
    let mut angle = 0i32;
    for (i, t) in toks.iter().enumerate().skip(from + 1) {
        match t.as_str() {
            "<" => angle += 1,
            ">" if toks.get(i.wrapping_sub(1)).map(String::as_str) != Some("-") => {
                angle = (angle - 1).max(0);
            }
            ident
                if angle == 0
                    && is_ident(ident)
                    && !matches!(ident, "mut" | "dyn" | "const" | "unsafe") =>
            {
                return ident.to_string();
            }
            _ => {}
        }
    }
    "<anon>".to_string()
}

/// Records a path or method call ending at the identifier `i` (which is
/// followed by `(`), attaching panic/writer facts as warranted.
fn record_call(out: &mut FileItems, toks: &[Token], i: usize, lineno: usize, scopes: &[Scope]) {
    let Some(fi) = innermost_fn(scopes) else {
        return;
    };
    // Walk the `::`-separated path backwards, skipping turbofish groups.
    let mut segs = vec![toks[i].text.clone()];
    let mut j = i;
    loop {
        if j < 2 || toks[j - 1].text != "::" {
            break;
        }
        let mut k = j - 2;
        if toks[k].text == ">" {
            // `Type::<T>::name`: skip back over the generic group.
            let mut depth = 1i32;
            let mut m = k;
            while m > 0 && depth > 0 {
                m -= 1;
                match toks[m].text.as_str() {
                    ">" => depth += 1,
                    "<" => depth -= 1,
                    _ => {}
                }
            }
            if m < 2 || depth != 0 || toks[m - 1].text != "::" {
                break;
            }
            k = m - 2;
        }
        if is_ident(&toks[k].text) {
            segs.insert(0, toks[k].text.clone());
            j = k;
        } else {
            break;
        }
    }
    let is_method = j > 0 && toks[j - 1].text == ".";
    let name = segs.last().expect("nonempty path").clone();

    if PANIC_METHODS.contains(&name.as_str()) {
        let kind = if name.starts_with("unwrap") {
            PanicKind::Unwrap
        } else {
            PanicKind::Expect
        };
        out.fns[fi].panics.push(PanicSite { kind, line: lineno });
    }
    let is_writer = segs.len() >= 2
        && (segs.ends_with(&["fs".to_string(), "write".to_string()])
            || segs.ends_with(&["File".to_string(), "create".to_string()])
            || segs.ends_with(&["File".to_string(), "options".to_string()]))
        || segs.iter().any(|s| s == "OpenOptions");
    if is_writer {
        out.fns[fi].writes.push(lineno);
    }

    let kind = if is_method && segs.len() == 1 {
        CallKind::Method(name)
    } else {
        CallKind::Path(segs)
    };
    out.fns[fi].calls.push(CallSite { kind, line: lineno });
}

/// Parses an accumulated `use` declaration (tokens between `use` and
/// `;`) into aliases and glob prefixes, normalized against the file.
fn finish_use(out: &mut FileItems, toks: &[String], scopes: &[Scope]) {
    let toks: Vec<&str> = toks.iter().map(String::as_str).collect();
    let mut mods: Vec<String> = out.modules.clone();
    for s in scopes {
        if let ScopeKind::Mod(m) = &s.kind {
            mods.push(m.clone());
        }
    }
    let mut pos = 0;
    let mut decls = Vec::new();
    let mut globs = Vec::new();
    use_tree(&toks, &mut pos, &[], &mut decls, &mut globs);
    for (alias, path) in decls {
        if alias == "_" {
            continue;
        }
        let path = normalize_prefix(path, &out.crate_id, &mods);
        out.uses.push(UseDecl { alias, path });
    }
    for g in globs {
        out.globs.push(normalize_prefix(g, &out.crate_id, &mods));
    }
}

/// Recursive descent over one `use` tree level.
fn use_tree(
    toks: &[&str],
    pos: &mut usize,
    prefix: &[String],
    decls: &mut Vec<(String, Vec<String>)>,
    globs: &mut Vec<Vec<String>>,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    loop {
        match toks.get(*pos).copied() {
            Some("*") => {
                *pos += 1;
                globs.push(segs);
                return;
            }
            Some("{") => {
                *pos += 1;
                loop {
                    use_tree(toks, pos, &segs, decls, globs);
                    match toks.get(*pos).copied() {
                        Some(",") => *pos += 1,
                        Some("}") => {
                            *pos += 1;
                            return;
                        }
                        _ => return,
                    }
                }
            }
            Some("self") => {
                *pos += 1;
                if let Some(last) = segs.last().cloned() {
                    decls.push((last, segs));
                }
                return;
            }
            Some(t) if is_ident(t) => {
                segs.push(t.to_string());
                *pos += 1;
                match toks.get(*pos).copied() {
                    Some("::") => {
                        *pos += 1;
                        continue;
                    }
                    Some("as") => {
                        let alias = toks.get(*pos + 1).copied().unwrap_or("_").to_string();
                        *pos += 2;
                        decls.push((alias, segs));
                        return;
                    }
                    _ => {
                        let alias = segs.last().cloned().unwrap_or_default();
                        decls.push((alias, segs));
                        return;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Resolves leading `crate`/`self`/`super` and the `bgpscale_` crate
/// prefix so paths compare against qualified names directly.
pub fn normalize_prefix(mut path: Vec<String>, crate_id: &str, mods: &[String]) -> Vec<String> {
    if path.is_empty() {
        return path;
    }
    match path[0].as_str() {
        "crate" => {
            path[0] = crate_id.to_string();
        }
        "self" => {
            let mut p = vec![crate_id.to_string()];
            p.extend(mods.iter().cloned());
            p.extend(path.into_iter().skip(1));
            path = p;
        }
        "super" => {
            let mut supers = 0;
            while path.first().map(String::as_str) == Some("super") {
                supers += 1;
                path.remove(0);
            }
            let keep = mods.len().saturating_sub(supers);
            let mut p = vec![crate_id.to_string()];
            p.extend(mods.iter().take(keep).cloned());
            p.extend(path);
            path = p;
        }
        first => {
            if let Some(stripped) = first.strip_prefix("bgpscale_") {
                path[0] = stripped.to_string();
            }
        }
    }
    path
}

/// Parses a `detflow::allow(rule, reason = "...")` directive.
fn parse_allow(comment: &str) -> Option<Result<(Rule, String), ()>> {
    match parse_allow_directive(comment, ALLOW_PREFIX)? {
        Ok((rule_id, reason)) => match Rule::from_id(&rule_id) {
            Some(rule) => Some(Ok((rule, reason))),
            None => Some(Err(())),
        },
        Err(()) => Some(Err(())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(rel: &str, src: &str) -> FileItems {
        let needles = Needles {
            stamp: "SCHEMA_VERSION".to_string(),
            exits: vec!["EXIT_OK".to_string(), "EXIT_USAGE".to_string()],
        };
        parse_file(rel, src, &needles)
    }

    fn qnames(items: &FileItems) -> Vec<&str> {
        items.fns.iter().map(|f| f.qname.as_str()).collect()
    }

    #[test]
    fn module_paths_follow_workspace_layout() {
        assert_eq!(
            module_of("crates/bgp/src/node.rs"),
            ("bgp".to_string(), vec!["node".to_string()])
        );
        assert_eq!(module_of("crates/core/src/lib.rs"), ("core".to_string(), vec![]));
        assert_eq!(
            module_of("crates/experiments/src/bin/repro.rs"),
            ("experiments".to_string(), vec!["bin".to_string(), "repro".to_string()])
        );
        assert_eq!(module_of("src/lib.rs"), ("bgpscale".to_string(), vec![]));
        assert_eq!(
            module_of("det/entry.rs"),
            ("det".to_string(), vec!["entry".to_string()])
        );
    }

    #[test]
    fn fns_methods_and_nested_modules_get_qualified_names() {
        let src = "\
pub fn free() {}
pub struct Node;
impl Node {
    pub fn method(&self) {}
}
mod inner {
    pub fn hidden() {}
}
trait Tr {
    fn required(&self);
    fn provided(&self) -> u64 { 1 }
}
impl Tr for Node {
    fn required(&self) {}
}
";
        let items = parse("crates/bgp/src/node.rs", src);
        assert_eq!(
            qnames(&items),
            [
                "bgp::node::free",
                "bgp::node::Node::method",
                "bgp::node::inner::hidden",
                "bgp::node::Tr::required",
                "bgp::node::Tr::provided",
                "bgp::node::Node::required",
            ]
        );
        assert!(items.fns[0].is_pub);
        assert!(items.fns[1].is_pub);
        assert!(!items.fns[3].is_pub);
    }

    #[test]
    fn calls_are_extracted_with_paths_methods_and_macros() {
        let src = "\
pub fn go(x: u64) -> u64 {
    let a = helper(x);
    let b = simkernel::rng::mix(a);
    let c = a.wrapping_add(b);
    let d = EventQueue::<u64>::push_len(c);
    println!(\"{c}\");
    d
}
";
        let items = parse("crates/core/src/sim.rs", src);
        let calls = &items.fns[0].calls;
        let kinds: Vec<&CallKind> = calls.iter().map(|c| &c.kind).collect();
        assert!(kinds.contains(&&CallKind::Path(vec!["helper".to_string()])));
        assert!(kinds.contains(&&CallKind::Path(vec![
            "simkernel".to_string(),
            "rng".to_string(),
            "mix".to_string()
        ])));
        assert!(kinds.contains(&&CallKind::Method("wrapping_add".to_string())));
        assert!(kinds.contains(&&CallKind::Path(vec![
            "EventQueue".to_string(),
            "push_len".to_string()
        ])));
        assert!(kinds.contains(&&CallKind::Macro("println".to_string())));
    }

    #[test]
    fn panic_sites_cover_all_four_kinds() {
        let src = "\
pub fn risky(v: &[u64], o: Option<u64>) -> u64 {
    let a = v[0];
    let b = o.unwrap();
    let c = o.expect(\"set\");
    if a == 0 { panic!(\"zero\"); }
    a + b + c
}
";
        let items = parse("crates/core/src/sim.rs", src);
        let mut kinds: Vec<PanicKind> = items.fns[0].panics.iter().map(|p| p.kind).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(
            kinds,
            [
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro,
                PanicKind::SliceIndex
            ]
        );
        // The slice index is on line 2.
        let idx = items.fns[0]
            .panics
            .iter()
            .find(|p| p.kind == PanicKind::SliceIndex)
            .expect("slice site");
        assert_eq!(idx.line, 2);
    }

    #[test]
    fn slice_patterns_attributes_and_types_are_not_indexing() {
        let src = "\
#[derive(Clone)]
pub struct W(pub [u8; 4]);
pub fn f(w: &W) -> u8 {
    let [a, b, ..] = [1u8, 2, 3, 4];
    let arr: [u8; 2] = [a, b];
    let v = vec![0u8];
    arr[0] + w.0[1] + v[0]
}
";
        let items = parse("crates/core/src/sim.rs", src);
        let sites: Vec<usize> = items.fns[0]
            .panics
            .iter()
            .filter(|p| p.kind == PanicKind::SliceIndex)
            .map(|p| p.line)
            .collect();
        // Only the three real index expressions on the final line fire.
        assert_eq!(sites, [7, 7, 7]);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let src = "\
macro_rules! gen {
    ($n:ident) => {
        pub fn $n() { std::fs::write(\"x\", \"y\").unwrap(); }
    };
}
pub fn after() {}
";
        let items = parse("crates/obs/src/render.rs", src);
        assert_eq!(qnames(&items), ["obs::render::after"]);
        assert!(items.fns[0].panics.is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    pub fn fake() { panic!(\"only in tests\"); }
}
";
        let items = parse("crates/core/src/sim.rs", src);
        assert_eq!(qnames(&items), ["core::sim::real"]);
    }

    #[test]
    fn uses_parse_groups_globs_and_aliases() {
        let src = "\
use std::collections::BTreeMap;
use crate::{cevent::run_c_event, sim::Simulator as Sim};
use bgpscale_obs::SCHEMA_VERSION;
use super::helpers::*;
pub fn f() {}
";
        let items = parse("crates/core/src/levent.rs", src);
        let aliases: Vec<(&str, String)> = items
            .uses
            .iter()
            .map(|u| (u.alias.as_str(), u.path.join("::")))
            .collect();
        assert!(aliases.contains(&("BTreeMap", "std::collections::BTreeMap".to_string())));
        assert!(aliases.contains(&("run_c_event", "core::cevent::run_c_event".to_string())));
        assert!(aliases.contains(&("Sim", "core::sim::Simulator".to_string())));
        assert!(aliases.contains(&("SCHEMA_VERSION", "obs::SCHEMA_VERSION".to_string())));
        assert_eq!(items.globs, [vec!["core".to_string(), "helpers".to_string()]]);
    }

    #[test]
    fn writer_stamp_and_exit_mentions_are_detected() {
        let src = "\
pub fn write_it(path: &str) {
    let body = format!(\"{{\\\"schema_version\\\":{SCHEMA_VERSION}}}\");
    std::fs::write(path, body).ok();
}
pub fn exits() -> i32 {
    EXIT_OK
}
";
        let items = parse("crates/obs/src/render.rs", src);
        assert_eq!(items.fns[0].writes.len(), 1);
        assert!(items.fns[0].mentions_stamp, "stamp inside a format string must count");
        assert!(!items.fns[1].mentions_stamp);
        assert!(items.fns[1].mentions.contains("EXIT_OK"));
    }

    #[test]
    fn impl_trait_returns_do_not_derail_the_head() {
        let src = "\
pub fn iter_all(n: u64) -> impl Iterator<Item = u64> + 'static {
    (0..n).map(|i| i * 2)
}
pub fn next_one() {}
";
        let items = parse("crates/topology/src/walk.rs", src);
        assert_eq!(qnames(&items), ["topology::walk::iter_all", "topology::walk::next_one"]);
        // The closure body belongs to iter_all, not to a phantom item.
        assert!(items.fns[0].calls.iter().any(|c| c.kind == CallKind::Method("map".to_string())));
    }

    #[test]
    fn allows_are_collected_with_coverage_lines() {
        let src = "\
// detflow::allow(panic-surface, reason = \"slot bounded by construction\")
pub fn f(v: &[u64]) -> u64 { v[0] }
pub fn g(v: &[u64]) -> u64 { v[1] } // detflow::allow(panic-surface, reason = \"caller checks\")
// detflow::allow(nope)
pub fn h() {}
";
        let items = parse("crates/bgp/src/node.rs", src);
        assert_eq!(items.allows.len(), 2);
        assert_eq!(items.allows[0].decl_line, 1);
        assert_eq!(items.allows[0].covers_line, 2);
        assert_eq!(items.allows[1].covers_line, 3);
        assert_eq!(items.bad_allows, [4]);
    }

    #[test]
    fn main_detection_tracks_binary_layout() {
        let bin = parse("crates/experiments/src/bin/repro.rs", "fn main() {}\n");
        assert!(bin.fns[0].is_main);
        let root = parse("crates/detlint/src/main.rs", "fn main() {}\n");
        assert!(root.fns[0].is_main);
        let lib = parse("crates/core/src/lib.rs", "fn main() {}\n");
        assert!(!lib.fns[0].is_main);
    }
}
