//! The workspace call graph: node flattening and conservative edge
//! resolution.
//!
//! Resolution is a **deliberate over-approximation**. A call that could
//! target more than one workspace function gets an edge to every
//! candidate; a call that targets nothing in the workspace becomes an
//! [`EdgeTarget::External`] (qualified paths) or
//! [`EdgeTarget::Opaque`] (bare method names) edge rather than
//! vanishing. The passes err on the side of reporting: a spurious edge
//! costs an audited allow, a missing edge costs a missed hazard.
//!
//! The resolution order for a path call, normalized against the file's
//! imports and `crate`/`self`/`super` prefixes:
//!
//! 1. exact qualified-name match;
//! 2. same-module, then owner-type (`Self::helper`) match for bare
//!    names, then glob-import expansion;
//! 3. `Type::name` suffix match anywhere in the workspace (types are
//!    imported under bare names, so the path rarely carries the crate);
//! 4. same-crate name match for bare calls;
//! 5. crate-qualified name match when the head segment is a workspace
//!    crate.
//!
//! Method calls resolve by name across **all** scanned crates (the
//! receiver type is unknown); names listed in `[resolve]
//! opaque-methods` are exempted from this and stay opaque.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::FlowConfig;
use crate::items::{CallKind, FileItems, FnItem};

/// Where an edge points.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeTarget {
    /// A workspace function (index into [`Graph::nodes`]).
    Node(usize),
    /// A qualified path outside the workspace (normalized, joined).
    External(String),
    /// A method name that resolved to no workspace impl.
    Opaque(String),
}

/// One resolved call edge.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
    pub target: EdgeTarget,
}

/// One graph node: a workspace function plus provenance.
#[derive(Clone, Debug)]
pub struct Node {
    pub item: FnItem,
    /// File the function lives in, relative to the scan root.
    pub file: String,
    pub crate_id: String,
}

/// The resolved call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Sorted by qualified name; indices are stable for one build.
    pub nodes: Vec<Node>,
    pub by_qname: BTreeMap<String, usize>,
    /// Outgoing edges per node, sorted and deduplicated.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    /// Builds the graph from parsed files.
    pub fn build(files: &[FileItems], cfg: &FlowConfig) -> Graph {
        let mut nodes: Vec<Node> = Vec::new();
        for f in files {
            for item in &f.fns {
                nodes.push(Node {
                    item: item.clone(),
                    file: f.rel.clone(),
                    crate_id: f.crate_id.clone(),
                });
            }
        }
        nodes.sort_by(|a, b| {
            (&a.item.qname, &a.file, a.item.line).cmp(&(&b.item.qname, &b.file, b.item.line))
        });

        let mut by_qname = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_suffix: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut crate_ids: BTreeSet<&str> = BTreeSet::new();
        for (i, n) in nodes.iter().enumerate() {
            // First declaration wins on a qname collision; the duplicate
            // still resolves by name, so no edge is lost.
            by_qname.entry(n.item.qname.clone()).or_insert(i);
            by_name.entry(&n.item.name).or_default().push(i);
            if let Some(owner) = &n.item.owner {
                by_method.entry(&n.item.name).or_default().push(i);
                by_suffix
                    .entry(format!("{owner}::{}", n.item.name))
                    .or_default()
                    .push(i);
            }
            crate_ids.insert(&n.crate_id);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let opaque: BTreeSet<&str> = cfg.opaque_methods.iter().map(String::as_str).collect();
        for f in files {
            let uses: BTreeMap<&str, &[String]> = f
                .uses
                .iter()
                .map(|u| (u.alias.as_str(), u.path.as_slice()))
                .collect();
            for item in &f.fns {
                let Some(&ni) = by_qname.get(&item.qname) else {
                    continue;
                };
                // Collided qname: make sure we attach to *this* item's node.
                let ni = if nodes[ni].item.line == item.line && nodes[ni].file == f.rel {
                    ni
                } else {
                    match nodes
                        .iter()
                        .position(|n| n.file == f.rel && n.item.line == item.line)
                    {
                        Some(i) => i,
                        None => continue,
                    }
                };
                for call in &item.calls {
                    let mut targets: Vec<EdgeTarget> = Vec::new();
                    match &call.kind {
                        CallKind::Macro(_) => continue,
                        CallKind::Method(name) => {
                            if opaque.contains(name.as_str()) {
                                targets.push(EdgeTarget::Opaque(name.clone()));
                            } else {
                                match by_method.get(name.as_str()) {
                                    Some(cands) => targets
                                        .extend(cands.iter().map(|&c| EdgeTarget::Node(c))),
                                    None => targets.push(EdgeTarget::Opaque(name.clone())),
                                }
                            }
                        }
                        CallKind::Path(segs) => {
                            resolve_path(
                                segs,
                                f,
                                item,
                                &uses,
                                &by_qname,
                                &by_name,
                                &by_suffix,
                                &crate_ids,
                                &nodes,
                                &mut targets,
                            );
                        }
                    }
                    for t in targets {
                        edges[ni].push(Edge {
                            line: call.line,
                            target: t,
                        });
                    }
                }
            }
        }
        for e in &mut edges {
            e.sort();
            e.dedup();
        }
        Graph {
            nodes,
            by_qname,
            edges,
        }
    }

    /// Total edge count (for reporting).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Resolves one qualified or bare path call into edge targets.
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segs: &[String],
    f: &FileItems,
    item: &FnItem,
    uses: &BTreeMap<&str, &[String]>,
    by_qname: &BTreeMap<String, usize>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_suffix: &BTreeMap<String, Vec<usize>>,
    crate_ids: &BTreeSet<&str>,
    nodes: &[Node],
    out: &mut Vec<EdgeTarget>,
) {
    // Expand a leading import alias, then crate-relative prefixes.
    let mut path: Vec<String> = segs.to_vec();
    if let Some(&target) = uses.get(path[0].as_str()) {
        let mut p: Vec<String> = target.to_vec();
        p.extend(path.into_iter().skip(1));
        path = p;
    }
    if path[0] == "Self" {
        let mut p = vec![f.crate_id.clone()];
        p.extend(f.modules.iter().cloned());
        if let Some(owner) = &item.owner {
            p.push(owner.clone());
        }
        p.extend(path.into_iter().skip(1));
        path = p;
    }
    let path = crate::items::normalize_prefix(path, &f.crate_id, &f.modules);
    let joined = path.join("::");

    // 1. Exact qualified name.
    if let Some(&i) = by_qname.get(&joined) {
        out.push(EdgeTarget::Node(i));
        return;
    }

    let name = path.last().expect("nonempty path").clone();
    if path.len() == 1 {
        // 2. Bare name: same module, owner type, glob imports.
        let mut full = vec![f.crate_id.clone()];
        full.extend(f.modules.iter().cloned());
        full.push(name.clone());
        if let Some(&i) = by_qname.get(&full.join("::")) {
            out.push(EdgeTarget::Node(i));
            return;
        }
        if let Some(owner) = &item.owner {
            let mut full = vec![f.crate_id.clone()];
            full.extend(f.modules.iter().cloned());
            full.push(owner.clone());
            full.push(name.clone());
            if let Some(&i) = by_qname.get(&full.join("::")) {
                out.push(EdgeTarget::Node(i));
                return;
            }
        }
        for g in &f.globs {
            let mut full = g.clone();
            full.push(name.clone());
            if let Some(&i) = by_qname.get(&full.join("::")) {
                out.push(EdgeTarget::Node(i));
                return;
            }
        }
        // 4. Same-crate free function of that name, anywhere.
        if let Some(cands) = by_name.get(name.as_str()) {
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].crate_id == f.crate_id && nodes[c].item.owner.is_none())
                .collect();
            if !same.is_empty() {
                out.extend(same.into_iter().map(EdgeTarget::Node));
                return;
            }
        }
        out.push(EdgeTarget::External(joined));
        return;
    }

    // 3. `Type::name` suffix match (types travel under bare names).
    let suffix = format!("{}::{name}", path[path.len() - 2]);
    if let Some(cands) = by_suffix.get(&suffix) {
        out.extend(cands.iter().map(|&c| EdgeTarget::Node(c)));
        return;
    }

    // 5. Crate-qualified name match (`simkernel::hash64` where the fn
    // is re-exported from a submodule).
    if crate_ids.contains(path[0].as_str()) {
        if let Some(cands) = by_name.get(name.as_str()) {
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].crate_id == path[0])
                .collect();
            if !same.is_empty() {
                out.extend(same.into_iter().map(EdgeTarget::Node));
                return;
            }
        }
    }
    out.push(EdgeTarget::External(joined));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{parse_file, Needles};

    fn build(files: &[(&str, &str)]) -> Graph {
        let needles = Needles::default();
        let parsed: Vec<FileItems> = files
            .iter()
            .map(|(rel, src)| parse_file(rel, src, &needles))
            .collect();
        Graph::build(&parsed, &FlowConfig::default())
    }

    fn edge_qnames(g: &Graph, from: &str) -> Vec<String> {
        let &i = g.by_qname.get(from).expect("node exists");
        g.edges[i]
            .iter()
            .filter_map(|e| match e.target {
                EdgeTarget::Node(t) => Some(g.nodes[t].item.qname.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn exact_and_bare_calls_resolve() {
        let g = build(&[(
            "det/a.rs",
            "pub fn entry() { helper(); det::a::helper(); }\nfn helper() {}\n",
        )]);
        // Both spellings resolve to the same node; identical edges on one
        // line collapse to one.
        assert_eq!(edge_qnames(&g, "det::a::entry"), ["det::a::helper"]);
    }

    #[test]
    fn cross_crate_qualified_calls_resolve() {
        let g = build(&[
            ("det/entry.rs", "pub fn go() -> u64 { util::helper::ticks(1) }\n"),
            ("util/helper.rs", "pub fn ticks(k: u64) -> u64 { k }\n"),
        ]);
        assert_eq!(edge_qnames(&g, "det::entry::go"), ["util::helper::ticks"]);
    }

    #[test]
    fn glob_reexports_resolve_through_name_match() {
        // `pub use inner::*` in crate `a`; crate `b` imports `a::f` and
        // calls it bare — resolution must land on `a::inner::f`.
        let g = build(&[
            ("a/lib.rs", "pub use inner::*;\npub mod inner { pub fn f() {} }\n"),
            ("b/user.rs", "use a::f;\npub fn call() { f() }\n"),
        ]);
        assert_eq!(edge_qnames(&g, "b::user::call"), ["a::inner::f"]);
    }

    #[test]
    fn glob_imports_resolve_bare_names() {
        let g = build(&[
            ("a/util.rs", "pub fn shared() {}\n"),
            ("a/caller.rs", "use crate::util::*;\npub fn go() { shared() }\n"),
        ]);
        assert_eq!(edge_qnames(&g, "a::caller::go"), ["a::util::shared"]);
    }

    #[test]
    fn method_calls_fan_out_to_all_impls_of_that_name() {
        let g = build(&[
            (
                "a/q.rs",
                "pub struct Q;\nimpl Q { pub fn push(&self) {} }\n",
            ),
            (
                "b/r.rs",
                "pub struct R;\nimpl R { pub fn push(&self) {} }\n",
            ),
            ("c/use.rs", "pub fn go(x: &[u64]) { x.push() }\n"),
        ]);
        let got = edge_qnames(&g, "c::use::go");
        assert_eq!(got, ["a::q::Q::push", "b::r::R::push"]);
    }

    #[test]
    fn method_vs_function_ambiguity_stays_separate() {
        // A bare `len(v)` call must resolve to the same-crate free
        // function, never to a method named `len`.
        let g = build(&[(
            "a/m.rs",
            "pub struct S;\nimpl S { pub fn len(&self) -> u64 { 0 } }\n\
             pub fn len(v: &[u64]) -> u64 { v.len() as u64 }\n\
             pub fn call(v: &[u64]) -> u64 { len(v) }\n",
        )]);
        assert_eq!(edge_qnames(&g, "a::m::call"), ["a::m::len"]);
        // The `.len()` method call inside the free fn fans out to the impl.
        assert_eq!(edge_qnames(&g, "a::m::len"), ["a::m::S::len"]);
    }

    #[test]
    fn type_qualified_calls_suffix_match_across_crates() {
        let g = build(&[
            (
                "crates/simkernel/src/queue.rs",
                "pub struct EventQueue;\nimpl EventQueue { pub fn push(&self) {} }\n",
            ),
            (
                "crates/core/src/sim.rs",
                "use bgpscale_simkernel::queue::EventQueue;\n\
                 pub fn go(q: &EventQueue) { EventQueue::push(q) }\n",
            ),
        ]);
        assert_eq!(
            edge_qnames(&g, "core::sim::go"),
            ["simkernel::queue::EventQueue::push"]
        );
    }

    #[test]
    fn unresolved_calls_stay_as_external_or_opaque_edges() {
        let g = build(&[(
            "a/x.rs",
            "pub fn go() { std::fs::read(\"p\").ok(); thing.frobnicate(); }\n",
        )]);
        let &i = g.by_qname.get("a::x::go").expect("node");
        let targets: Vec<&EdgeTarget> = g.edges[i].iter().map(|e| &e.target).collect();
        assert!(targets.contains(&&EdgeTarget::External("std::fs::read".to_string())));
        assert!(targets.contains(&&EdgeTarget::Opaque("frobnicate".to_string())));
    }

    #[test]
    fn opaque_methods_config_suppresses_fan_out() {
        let needles = Needles::default();
        let parsed = vec![
            parse_file("a/q.rs", "pub struct Q;\nimpl Q { pub fn push(&self) {} }\n", &needles),
            parse_file("c/u.rs", "pub fn go(v: &mut Vec<u64>) { v.push(1) }\n", &needles),
        ];
        let cfg = FlowConfig {
            opaque_methods: vec!["push".to_string()],
            ..FlowConfig::default()
        };
        let g = Graph::build(&parsed, &cfg);
        let &i = g.by_qname.get("c::u::go").expect("node");
        assert_eq!(
            g.edges[i],
            [Edge {
                line: 1,
                target: EdgeTarget::Opaque("push".to_string())
            }]
        );
    }

    #[test]
    fn every_node_edge_targets_an_existing_node() {
        // Property: resolution can never fabricate a dangling index.
        let g = build(&[
            ("a/x.rs", "pub fn f() { g(); h::i(); }\npub fn g() {}\n"),
            ("a/h.rs", "pub fn i() { crate::x::f() }\n"),
        ]);
        for edges in &g.edges {
            for e in edges {
                if let EdgeTarget::Node(t) = e.target {
                    assert!(t < g.nodes.len());
                }
            }
        }
    }
}
