//! # bgpscale-detflow
//!
//! The **call-graph determinism analyzer**: the second, reachability-
//! aware tier of static checking in this workspace, layered over
//! `bgpscale-detlint`'s line rules and sharing its lexer.
//!
//! detlint answers "does this *line* contain a hazard token in a
//! deterministic file?". That leaves a blind spot the size of a function
//! call: a deterministic crate can call a helper in a *non*-deterministic
//! crate that reads the wall clock, and no line in the deterministic tier
//! ever holds a banned token. detflow closes it by extracting a
//! conservative item/call graph of the whole workspace and running four
//! passes over it:
//!
//! | pass | guarantees |
//! |------|------------|
//! | `det-closure` | no call path from a deterministic-tier `pub fn` reaches a wall-side module (`simkernel::wallclock`/`rss`/`alloc`, `obs::span`) or external wall/env API, except through an audited crossing |
//! | `panic-surface` | every function reachable from the hot-path roots (`run_c_event`, `handle_update_at`, the event-queue push/pop) is free of `unwrap`/`expect`/`panic!`/slice-indexing, or carries an audited invariant |
//! | `artifact-contract` | every file-writing function flows through the `SCHEMA_VERSION` stamp, and every artifact-writing binary uses the shared 0/1/2 exit constants |
//! | `config-coherence` | `detflow.toml`, `detlint.toml`, and `clippy.toml` agree on the tier map, wall-side exemptions, and required clippy bans |
//!
//! plus the same allow-hygiene meta rules as detlint (`stale-allow`,
//! `bad-allow`) for its own `// detflow::allow(rule, reason = "...")`
//! audited suppressions.
//!
//! The extractor ([`items`]) is scope-tracking, not parsing: `impl` and
//! `mod` nesting produce qualified names, imports and `crate::` paths
//! resolve ([`graph`]) with deliberate over-approximation (ambiguous
//! method calls fan out to every workspace impl of that name;
//! `macro_rules!` bodies are opaque; unresolved calls stay as external
//! edges). A spurious edge costs an audited allow — a missed edge would
//! cost a silent hazard, so the trade always goes the same way.
//!
//! The binary (`cargo run -p bgpscale-detflow -- --check`) exits with
//! the workspace-wide convention: `0` clean, `1` violations, `2`
//! usage/config error, and `--json` reports are byte-deterministic.
//! `--fixtures` runs the seeded-bad self-test where **both** missed
//! detections and false positives fail. See `docs/ARCHITECTURE.md`
//! § "Static determinism guarantees" for how the two tiers divide the
//! work.

#![forbid(unsafe_code)]

pub mod config;
pub mod fixtures;
pub mod graph;
pub mod items;
pub mod passes;
pub mod report;

pub use config::FlowConfig;
pub use passes::analyze;
pub use report::{Analysis, Finding};

/// Schema version stamped into `detflow --json` reports.
pub const SCHEMA_VERSION: u32 = 1;

/// Exit code: the analysis found no violations.
pub const EXIT_OK: i32 = 0;
/// Exit code: violations (or fixture self-test failures) were found.
pub const EXIT_VIOLATIONS: i32 = 1;
/// Exit code: bad command line, unreadable root, or invalid config.
pub const EXIT_USAGE: i32 = 2;

/// One detflow rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// The deterministic closure reached a wall-side module or API.
    DetClosure,
    /// A panic source is reachable from a hot-path root.
    PanicSurface,
    /// An artifact writer misses the schema stamp or exit convention.
    ArtifactContract,
    /// The three checked-in configs disagree.
    ConfigCoherence,
    /// A `detflow::allow` that suppressed nothing.
    StaleAllow,
    /// A malformed `detflow::allow`.
    BadAllow,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 6] = [
        Rule::DetClosure,
        Rule::PanicSurface,
        Rule::ArtifactContract,
        Rule::ConfigCoherence,
        Rule::StaleAllow,
        Rule::BadAllow,
    ];

    /// The kebab-case identifier used in allow comments, fixture
    /// markers, and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DetClosure => "det-closure",
            Rule::PanicSurface => "panic-surface",
            Rule::ArtifactContract => "artifact-contract",
            Rule::ConfigCoherence => "config-coherence",
            Rule::StaleAllow => "stale-allow",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn exit_codes_follow_the_workspace_convention() {
        assert_eq!(EXIT_OK, bgpscale_detlint::EXIT_OK);
        assert_eq!(EXIT_VIOLATIONS, bgpscale_detlint::EXIT_VIOLATIONS);
        assert_eq!(EXIT_USAGE, bgpscale_detlint::EXIT_USAGE);
    }
}
