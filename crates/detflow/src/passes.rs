//! The four graph passes, allow bookkeeping, and the top-level
//! [`analyze`] entry point.
//!
//! * **det-closure** — BFS from every deterministic-tier `pub fn`; an
//!   edge into a sanctioned wall-side module or an external wall/env
//!   API is a violation anchored at the crossing call site, with a
//!   witness path back to the entry point.
//! * **panic-surface** — BFS from the configured hot-path roots; every
//!   reachable function containing a panic source (`unwrap`/`expect`,
//!   `panic!`-family, slice indexing) is a violation anchored at the
//!   function declaration, listing its sites.
//! * **artifact-contract** — every function that opens or writes a file
//!   must have the schema stamp in its forward closure; every binary
//!   `main` whose closure contains a writer must mention each exit-code
//!   constant group in its closure.
//! * **config-coherence** — `detflow.toml`, `detlint.toml`, and
//!   `clippy.toml` must agree: identical deterministic tier maps,
//!   detlint's wall-clock exemptions declared wall-side here, detflow's
//!   own sources registered integer-only in detlint, and the required
//!   clippy bans present.
//!
//! Suppression is per-site via `// detflow::allow(rule, reason = "...")`
//! with detlint's coverage semantics. Unused allows are `stale-allow`
//! violations, malformed ones `bad-allow` — suppressions can never
//! outlive what they audit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::config::FlowConfig;
use crate::graph::{EdgeTarget, Graph};
use crate::items::{parse_file, FileItems, Needles, PanicKind};
use crate::report::{AllowRecord, Analysis, Finding};
use crate::Rule;

/// Directory names never scanned: test and bench trees are exercised by
/// `cargo test`/`cargo bench`, not replayed, and would flood the graph
/// with fixture items.
const SKIP_DIRS: [&str; 2] = ["tests", "benches"];

/// External path segments that are wall-side by definition.
fn external_is_wall(joined: &str) -> bool {
    let segs: Vec<&str> = joined.split("::").collect();
    if segs
        .iter()
        .any(|s| matches!(*s, "Instant" | "SystemTime" | "UNIX_EPOCH" | "getrandom"))
    {
        return true;
    }
    // `env::var` / `var_os` / `vars` with an `env` segment before it.
    matches!(segs.last(), Some(&"var" | &"var_os" | &"vars")) && segs.contains(&"env")
}

/// Scans, builds the graph, runs every pass. `root` must hold the tree
/// `cfg` describes; coherence configs are resolved relative to it.
pub fn analyze(root: &Path, cfg: &FlowConfig) -> Result<Analysis, String> {
    let files = collect_files(root, cfg)?;
    let needles = Needles {
        stamp: cfg.stamp.clone(),
        exits: cfg.exit_alternatives(),
    };
    let mut parsed = Vec::with_capacity(files.len());
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        parsed.push(parse_file(rel, &text, &needles));
    }
    let graph = Graph::build(&parsed, cfg);
    Ok(run_passes(root, cfg, &parsed, &graph))
}

/// Walks the include roots for `.rs` files, sorted, honoring excludes
/// and skipping test/bench directories.
fn collect_files(root: &Path, cfg: &FlowConfig) -> Result<Vec<String>, String> {
    fn walk(
        root: &Path,
        dir: &Path,
        cfg: &FlowConfig,
        out: &mut Vec<String>,
    ) -> Result<(), String> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("walk error under {}: {e}", dir.display()))?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if cfg.is_excluded(&rel) {
                continue;
            }
            if path.is_dir() {
                let name = path.file_name().map(|n| n.to_string_lossy().to_string());
                if name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                    continue;
                }
                walk(root, &path, cfg, out)?;
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_file() {
            if inc.ends_with(".rs") && !cfg.is_excluded(inc) {
                files.push(inc.clone());
            }
        } else if dir.is_dir() {
            walk(root, &dir, cfg, &mut files)?;
        }
        // Missing include dirs are tolerated (fixture trees differ in shape).
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Allow ledger: every parsed directive plus a used flag.
struct Ledger {
    allows: Vec<(String, crate::items::FlowAllow, bool)>,
}

impl Ledger {
    fn new(files: &[FileItems]) -> Ledger {
        let mut allows = Vec::new();
        for f in files {
            for a in &f.allows {
                allows.push((f.rel.clone(), a.clone(), false));
            }
        }
        Ledger { allows }
    }

    /// True (and marks used) if an allow of `rule` covers (file, line).
    fn covered(&mut self, file: &str, line: usize, rule: Rule) -> bool {
        let mut hit = false;
        for (f, a, used) in &mut self.allows {
            if a.rule == rule && a.covers_line == line && f == file {
                *used = true;
                hit = true;
            }
        }
        hit
    }
}

fn run_passes(root: &Path, cfg: &FlowConfig, files: &[FileItems], graph: &Graph) -> Analysis {
    let mut ledger = Ledger::new(files);
    let mut findings: Vec<Finding> = Vec::new();

    // ---- det-closure -------------------------------------------------
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.item.is_pub
                && cfg.is_deterministic(&n.file)
                && !cfg.is_wall_side(&n.item.qname)
        })
        .collect();
    let entry_points = entries.len();
    {
        let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
        let mut seen: Vec<bool> = vec![false; graph.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in &entries {
            if !seen[e] {
                seen[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            for edge in &graph.edges[u] {
                let crossing: Option<String> = match &edge.target {
                    EdgeTarget::Node(v) => {
                        let q = &graph.nodes[*v].item.qname;
                        if cfg.is_wall_side(q) {
                            Some(q.clone())
                        } else {
                            if !seen[*v] {
                                seen[*v] = true;
                                parent[*v] = Some(u);
                                queue.push_back(*v);
                            }
                            None
                        }
                    }
                    EdgeTarget::External(p) if external_is_wall(p) => Some(p.clone()),
                    _ => None,
                };
                if let Some(target) = crossing {
                    let n = &graph.nodes[u];
                    if ledger.covered(&n.file, edge.line, Rule::DetClosure) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: Rule::DetClosure,
                        file: n.file.clone(),
                        line: edge.line,
                        message: format!(
                            "deterministic closure reaches wall-side `{target}` \
                             (route through simulated time/seeded rng, or audit the \
                             crossing with a detflow::allow)"
                        ),
                        witness: witness(graph, &parent, u),
                    });
                }
            }
        }
    }

    // ---- panic-surface -----------------------------------------------
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| cfg.is_hot_root(&graph.nodes[i].item.qname))
        .collect();
    let hot_roots = roots.len();
    {
        let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
        let mut seen: Vec<bool> = vec![false; graph.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in &roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        let mut order: Vec<usize> = Vec::new();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for edge in &graph.edges[u] {
                if let EdgeTarget::Node(v) = edge.target {
                    if !seen[v] {
                        seen[v] = true;
                        parent[v] = Some(u);
                        queue.push_back(v);
                    }
                }
            }
        }
        for u in order {
            let n = &graph.nodes[u];
            if n.item.panics.is_empty() {
                continue;
            }
            if ledger.covered(&n.file, n.item.line, Rule::PanicSurface) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::PanicSurface,
                file: n.file.clone(),
                line: n.item.line,
                message: format!(
                    "`{}` is reachable from a hot path and can panic: {} \
                     (restructure, or audit the invariant with a detflow::allow \
                     on the fn declaration)",
                    n.item.qname,
                    panic_summary(&n.item.panics),
                ),
                witness: witness(graph, &parent, u),
            });
        }
    }

    // ---- artifact-contract -------------------------------------------
    let writers: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| !graph.nodes[i].item.writes.is_empty())
        .collect();
    let writer_count = writers.len();
    {
        let writer_set: BTreeSet<usize> = writers.iter().copied().collect();
        for &w in &writers {
            let closure = forward_closure(graph, w);
            let stamped = closure
                .iter()
                .any(|&i| graph.nodes[i].item.mentions_stamp);
            if stamped {
                continue;
            }
            let n = &graph.nodes[w];
            if ledger.covered(&n.file, n.item.line, Rule::ArtifactContract) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::ArtifactContract,
                file: n.file.clone(),
                line: n.item.line,
                message: format!(
                    "`{}` writes a file but nothing in its call closure mentions \
                     the schema stamp `{}` — artifacts must be versioned",
                    n.item.qname, cfg.stamp
                ),
                witness: Vec::new(),
            });
        }
        for i in 0..graph.nodes.len() {
            if !graph.nodes[i].item.is_main {
                continue;
            }
            let closure = forward_closure(graph, i);
            if !closure.iter().any(|c| writer_set.contains(c)) {
                continue;
            }
            let mentioned: BTreeSet<&String> = closure
                .iter()
                .flat_map(|&c| graph.nodes[c].item.mentions.iter())
                .collect();
            let missing: Vec<&str> = cfg
                .exit_constants
                .iter()
                .filter(|group| {
                    !group
                        .split('|')
                        .map(str::trim)
                        .any(|alt| mentioned.iter().any(|m| m.as_str() == alt))
                })
                .map(String::as_str)
                .collect();
            if missing.is_empty() {
                continue;
            }
            let n = &graph.nodes[i];
            if ledger.covered(&n.file, n.item.line, Rule::ArtifactContract) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::ArtifactContract,
                file: n.file.clone(),
                line: n.item.line,
                message: format!(
                    "binary `{}` writes artifacts but does not use the shared exit \
                     convention: missing {}",
                    n.item.qname,
                    missing.join(", ")
                ),
                witness: Vec::new(),
            });
        }
    }

    // ---- config-coherence --------------------------------------------
    findings.extend(check_coherence(root, cfg));

    // ---- allow hygiene -----------------------------------------------
    for f in files {
        for &line in &f.bad_allows {
            findings.push(Finding {
                rule: Rule::BadAllow,
                file: f.rel.clone(),
                line,
                message: "malformed detflow::allow; expected \
                          detflow::allow(<rule>, reason = \"...\")"
                    .to_string(),
                witness: Vec::new(),
            });
        }
    }
    let mut allows_out: Vec<AllowRecord> = Vec::new();
    for (file, a, used) in &ledger.allows {
        if *used {
            allows_out.push(AllowRecord {
                rule: a.rule,
                file: file.clone(),
                line: a.decl_line,
                reason: a.reason.clone(),
            });
        } else {
            findings.push(Finding {
                rule: Rule::StaleAllow,
                file: file.clone(),
                line: a.decl_line,
                message: "this detflow::allow suppressed nothing; remove it or move it \
                          onto the declaration it audits"
                    .to_string(),
                witness: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    allows_out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Analysis {
        files: files.iter().map(|f| f.rel.clone()).collect(),
        functions: graph.nodes.len(),
        edges: graph.edge_count(),
        entry_points,
        hot_roots,
        writers: writer_count,
        diagnostics: findings,
        allows: allows_out,
    }
}

/// Nodes reachable from `start`, including `start`, in index order.
fn forward_closure(graph: &Graph, start: usize) -> Vec<usize> {
    let mut seen = vec![false; graph.nodes.len()];
    seen[start] = true;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for e in &graph.edges[u] {
            if let EdgeTarget::Node(v) = e.target {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    (0..graph.nodes.len()).filter(|&i| seen[i]).collect()
}

/// Renders the BFS parent chain of `u` root-first, capped.
fn witness(graph: &Graph, parent: &[Option<usize>], u: usize) -> Vec<String> {
    let mut chain = vec![u];
    let mut cur = u;
    while let Some(p) = parent[cur] {
        chain.push(p);
        cur = p;
        if chain.len() > 12 {
            break;
        }
    }
    chain.reverse();
    chain
        .into_iter()
        .map(|i| graph.nodes[i].item.qname.clone())
        .collect()
}

/// Summarizes a function's panic sites for the diagnostic message.
fn panic_summary(panics: &[crate::items::PanicSite]) -> String {
    let mut by_kind: BTreeMap<PanicKind, Vec<usize>> = BTreeMap::new();
    for p in panics {
        by_kind.entry(p.kind).or_default().push(p.line);
    }
    let mut parts = Vec::new();
    for (kind, mut lines) in by_kind {
        lines.sort_unstable();
        lines.dedup();
        let shown: Vec<String> = lines.iter().take(6).map(|l| l.to_string()).collect();
        let more = if lines.len() > 6 {
            format!(" (+{} more)", lines.len() - 6)
        } else {
            String::new()
        };
        parts.push(format!("{} at line {}{}", kind.label(), shown.join("/"), more));
    }
    parts.join(", ")
}

/// Maps a source path to its module path: `crates/obs/src/span.rs` →
/// `obs::span`.
fn path_to_module(rel: &str) -> String {
    let (crate_id, mods) = crate::items::module_of(rel);
    let mut parts = vec![crate_id];
    parts.extend(mods);
    parts.join("::")
}

/// The config-coherence pass: reconciles the three checked-in configs.
fn check_coherence(root: &Path, cfg: &FlowConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut drift = |file: &str, message: String| {
        findings.push(Finding {
            rule: Rule::ConfigCoherence,
            file: file.to_string(),
            line: 1,
            message,
            witness: Vec::new(),
        });
    };

    let detlint_rel = cfg.detlint_config.clone();
    let detlint_path = root.join(&detlint_rel);
    if !detlint_path.is_file() {
        drift(&detlint_rel, format!("`{detlint_rel}` is missing — the two tiers must share one tier map"));
        return findings;
    }
    let detlint = match bgpscale_detlint::config::Config::load(&detlint_path) {
        Ok(c) => c,
        Err(e) => {
            drift(&detlint_rel, format!("cannot parse `{detlint_rel}`: {e}"));
            return findings;
        }
    };

    // 1. Identical deterministic tier maps.
    let ours: BTreeSet<&String> = cfg.deterministic.iter().collect();
    let theirs: BTreeSet<&String> = detlint.deterministic.iter().collect();
    if ours != theirs {
        let missing: Vec<&str> = theirs.difference(&ours).map(|s| s.as_str()).collect();
        let extra: Vec<&str> = ours.difference(&theirs).map(|s| s.as_str()).collect();
        drift(
            "detflow.toml",
            format!(
                "deterministic tier maps disagree with `{detlint_rel}` \
                 (missing here: [{}]; extra here: [{}])",
                missing.join(", "),
                extra.join(", ")
            ),
        );
    }

    // 2. Every detlint wall-clock exemption must be a declared wall-side
    // module, so the closure pass fences what the line rules wave through.
    if let Some(exempt) = detlint.exempt.get(&bgpscale_detlint::rules::Rule::WallClock) {
        for path in exempt {
            let module = path_to_module(path);
            if !cfg.wall_side.contains(&module) {
                drift(
                    &detlint_rel,
                    format!(
                        "`{path}` is wall-clock-exempt for detlint but `{module}` is \
                         not declared in detflow's [wall-side] modules"
                    ),
                );
            }
        }
    }

    // 3. detflow's own sources must be registered integer-only in
    // detlint (the analyzer that bans floats must not float itself).
    if root.join("crates/detflow/src").is_dir()
        && !detlint.is_integer_only("crates/detflow/src/lib.rs")
    {
        drift(
            &detlint_rel,
            "crates/detflow/src must be listed under detlint's [integer-only] paths"
                .to_string(),
        );
    }

    // 4. Required clippy bans present (matched as quoted strings, so the
    // check is robust to clippy.toml's table-vs-array spellings).
    if !cfg.clippy_config.is_empty() {
        let clippy_rel = cfg.clippy_config.clone();
        let clippy_path = root.join(&clippy_rel);
        match std::fs::read_to_string(&clippy_path) {
            Err(_) => drift(&clippy_rel, format!("`{clippy_rel}` is missing")),
            Ok(text) => {
                let quoted = quoted_strings(&text);
                for req in &cfg.clippy_required {
                    if !quoted.contains(req) {
                        drift(
                            &clippy_rel,
                            format!("required clippy ban `{req}` is not present"),
                        );
                    }
                }
            }
        }
    }
    findings
}

/// All `"…"` string contents in a TOML file, comments stripped.
fn quoted_strings(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in text.lines() {
        let line = bgpscale_detlint::config::strip_toml_comment(raw);
        let mut rest = line;
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let Some(len) = tail.find('"') else { break };
            out.insert(tail[..len].to_string());
            rest = &tail[len + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_wall_classification() {
        assert!(external_is_wall("std::time::Instant::now"));
        assert!(external_is_wall("Instant::now"));
        assert!(external_is_wall("std::env::var"));
        assert!(external_is_wall("env::vars"));
        assert!(!external_is_wall("std::fs::write"));
        assert!(!external_is_wall("serde::var"));
        assert!(!external_is_wall("environment::var"));
    }

    #[test]
    fn path_to_module_matches_workspace_layout() {
        assert_eq!(path_to_module("crates/simkernel/src/wallclock.rs"), "simkernel::wallclock");
        assert_eq!(path_to_module("crates/obs/src/span.rs"), "obs::span");
        assert_eq!(path_to_module("util/sanctioned.rs"), "util::sanctioned");
    }

    #[test]
    fn quoted_strings_ignore_comments() {
        let got = quoted_strings("a = [\"x\", \"y\"] # \"z\"\n# \"w\"\n");
        assert!(got.contains("x") && got.contains("y"));
        assert!(!got.contains("z") && !got.contains("w"));
    }

    #[test]
    fn panic_summary_groups_and_caps() {
        use crate::items::PanicSite;
        let sites: Vec<PanicSite> = (1..=8)
            .map(|l| PanicSite {
                kind: PanicKind::Unwrap,
                line: l,
            })
            .chain([PanicSite {
                kind: PanicKind::SliceIndex,
                line: 3,
            }])
            .collect();
        let s = panic_summary(&sites);
        assert!(s.contains("unwrap at line 1/2/3/4/5/6 (+2 more)"), "{s}");
        assert!(s.contains("slice-index at line 3"), "{s}");
    }
}
