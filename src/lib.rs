//! # bgpscale
//!
//! A from-scratch Rust reproduction of
//!
//! > Ahmed Elmokashfi, Amund Kvalbein, Constantine Dovrolis.
//! > *On the scalability of BGP: the roles of topology growth and update
//! > rate-limiting.* ACM CoNEXT 2008.
//!
//! This facade crate re-exports the whole workspace. The pieces:
//!
//! * [`simkernel`] — a deterministic discrete-event simulation kernel
//!   (simulated time, event queue, seeded PRNG streams).
//! * [`topology`] — the paper's controllable AS-level topology generator:
//!   four node classes (tier-1 / mid-level / content-provider / customer
//!   stubs), geographic regions, preferential attachment, business
//!   relationships, the Table-1 Baseline growth model and its thirteen
//!   what-if deviations.
//! * [`bgp`] — the BGP protocol machine: UPDATE messages, Adj-RIB-in /
//!   Loc-RIB / Adj-RIB-out, Gao–Rexford export policies, the decision
//!   process, and per-interface MRAI rate limiting with both withdrawal
//!   treatments (WRATE / NO-WRATE).
//! * [`core`] — the network simulator and churn-analysis framework:
//!   C-events, per-relation update accounting, and the m/q/e factor
//!   decomposition of the paper's Eq. 1.
//! * [`stats`] — Mann–Kendall trend test, Sen's slope, OLS regression,
//!   normal distribution functions, power-law fitting.
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation, with the paper's qualitative claims encoded
//!   as PASS/FAIL checks (see the `repro` binary).
//!
//! ## Quickstart
//!
//! ```
//! use bgpscale::prelude::*;
//!
//! // 1. Generate a Baseline topology with 400 ASes.
//! let graph = generate(GrowthScenario::Baseline, 400, 42);
//!
//! // 2. Run 5 C-events and collect the churn report.
//! let report = run_experiment(&ExperimentConfig {
//!     scenario: GrowthScenario::Baseline,
//!     n: 400,
//!     events: 5,
//!     seed: 42,
//!     bgp: BgpConfig::default(),
//!     event_limit: None,
//!     wheel_slot_bits: None,
//! });
//!
//! // 3. Tier-1 networks hear more churn than customer stubs.
//! assert!(report.by_type(NodeType::T).u_total > report.by_type(NodeType::C).u_total);
//! # let _ = graph;
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the system inventory and the paper-vs-measured
//! record.

#![forbid(unsafe_code)]

pub use bgpscale_bgp as bgp;
pub use bgpscale_core as core;
pub use bgpscale_experiments as experiments;
pub use bgpscale_simkernel as simkernel;
pub use bgpscale_stats as stats;
pub use bgpscale_topology as topology;

/// The most common imports in one place.
pub mod prelude {
    pub use bgpscale_bgp::{BgpConfig, BgpNode, MraiMode, MraiScope, Prefix, Update, UpdateKind};
    pub use bgpscale_core::{run_experiment, ChurnReport, ExperimentConfig, Simulator};
    pub use bgpscale_core::cevent::run_c_event;
    pub use bgpscale_simkernel::{SimDuration, SimTime};
    pub use bgpscale_topology::{
        generate, AsGraph, AsId, GrowthScenario, NodeType, RegionSet, Relationship,
        TopologyParams,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let graph = generate(GrowthScenario::Tree, 120, 7);
        let mut sim = Simulator::new(graph, BgpConfig::default(), 7);
        let origin = sim
            .graph()
            .node_ids()
            .find(|&id| sim.graph().node_type(id) == NodeType::C)
            .unwrap();
        let outcome = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        assert!(outcome.total_updates > 0);
    }
}
