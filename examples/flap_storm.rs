//! Flap storm vs Route Flap Damping (RFC 2439).
//!
//! A pathologically unstable stub withdraws and re-announces its prefix
//! eight times in a row. Without damping, every cycle floods the whole
//! network; with damping, routers near the instability absorb it after a
//! few cycles — trading churn for temporary unreachability.
//!
//! ```sh
//! cargo run --release --example flap_storm
//! ```

use bgpscale::bgp::rfd::RfdConfig;
use bgpscale::core::flapstorm::{run_flap_storm, FlapStormConfig};
use bgpscale::prelude::*;

fn main() {
    let n = 800;
    let seed = 5;
    let graph = generate(GrowthScenario::Baseline, n, seed);
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .unwrap();
    let storm = FlapStormConfig::default();
    println!(
        "origin {origin} flaps its prefix {} times, one action every {}\n",
        storm.flaps, storm.period
    );

    for (label, rfd) in [("without damping", None), ("with RFC 2439 damping", Some(RfdConfig::default()))] {
        let bgp = BgpConfig {
            rfd,
            ..BgpConfig::default()
        };
        let mut sim = Simulator::new(graph.clone(), bgp, seed);
        let outcome = run_flap_storm(&mut sim, origin, Prefix(0), &storm).expect("converges");
        println!("{label}:");
        println!("  network-wide updates        : {}", outcome.total_updates);
        println!("  nodes holding damped routes : {}", outcome.suppressed_nodes);
        println!(
            "  unreachable right after storm: {}",
            outcome.unreachable_after_storm
        );
        println!(
            "  unreachable after reuse      : {}",
            outcome.unreachable_after_reuse
        );
        println!();
    }

    println!(
        "Reading: damping absorbs the instability close to its source — the \
         rest of the network stops hearing about it — at the cost of keeping \
         the flapping prefix suppressed (possibly unreachable) until the \
         penalty decays below the reuse threshold."
    );
}
