//! Quickstart: generate a topology, run one C-event, inspect the churn.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgpscale::prelude::*;

fn main() {
    // A Baseline topology with 1000 ASes (Table 1 of the paper).
    let n = 1_000;
    let seed = 42;
    let graph = generate(GrowthScenario::Baseline, n, seed);
    println!(
        "generated {} ASes: {} T, {} M, {} CP, {} C; {} transit + {} peering links",
        graph.len(),
        graph.count_of_type(NodeType::T),
        graph.count_of_type(NodeType::M),
        graph.count_of_type(NodeType::Cp),
        graph.count_of_type(NodeType::C),
        graph.transit_link_count(),
        graph.peer_link_count(),
    );

    // Pick a customer stub as the event originator.
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .expect("baseline topologies have C nodes");

    // Simulate one C-event: announce (warm-up), withdraw, re-announce.
    let mut sim = Simulator::new(graph, BgpConfig::default(), seed);
    let outcome = run_c_event(&mut sim, origin, Prefix(0)).expect("converges");

    println!("\nC-event at {origin}:");
    println!("  total updates delivered : {}", outcome.total_updates);
    println!("  withdrawals among them  : {}", outcome.withdrawals);
    println!("  DOWN convergence        : {}", outcome.down_convergence);
    println!("  UP convergence          : {}", outcome.up_convergence);

    // Who heard the most? Use the per-node counters.
    let mut loudest: Vec<(AsId, u64)> = sim
        .graph()
        .node_ids()
        .map(|id| (id, sim.churn().node_total(id)))
        .collect();
    loudest.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nmost-churned ASes:");
    for &(id, count) in loudest.iter().take(5) {
        println!(
            "  {id} ({}) received {count} updates",
            sim.graph().node_type(id)
        );
    }
}
