//! MRAI laboratory: WRATE vs NO-WRATE on the same topology (§6).
//!
//! RFC 4271 requires explicit withdrawals to be MRAI-rate-limited (WRATE);
//! RFC 1771 (and e.g. Quagga) sent them immediately (NO-WRATE). This
//! example runs the identical C-event under both settings and shows where
//! the extra churn comes from: path exploration, visible in the `e`
//! factors (updates per active neighbor).
//!
//! ```sh
//! cargo run --release --example mrai_lab
//! ```

use bgpscale::core::factors::node_factors;
use bgpscale::prelude::*;

fn main() {
    let n = 1_500;
    let seed = 7;
    let graph = generate(GrowthScenario::Baseline, n, seed);
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .unwrap();
    // The T node with the most customers — a busy vantage point.
    let vantage = graph
        .nodes_of_type(NodeType::T)
        .into_iter()
        .max_by_key(|&t| graph.degree(t))
        .unwrap();

    for cfg in [BgpConfig::no_wrate(), BgpConfig::wrate()] {
        let label = cfg.mrai_mode.label();
        let mut sim = Simulator::new(graph.clone(), cfg, seed);
        let outcome = run_c_event(&mut sim, origin, Prefix(0)).expect("converges");
        let f = node_factors(&sim, vantage);

        println!("=== {label} ===");
        println!("  network-wide updates      : {}", outcome.total_updates);
        println!("    withdrawals             : {}", outcome.withdrawals);
        println!("  DOWN convergence          : {}", outcome.down_convergence);
        println!("  UP convergence            : {}", outcome.up_convergence);
        println!("  at {vantage} (largest T):");
        println!("    updates received        : {}", f.total_updates());
        for rel in [Relationship::Customer, Relationship::Peer] {
            if let (Some(q), Some(e)) = (f.q(rel), f.e(rel)) {
                println!(
                    "    from {:9}: q = {q:.3}, e = {e:.2} updates/active neighbor",
                    rel.label()
                );
            }
        }
        println!();
    }

    println!(
        "Reading: under WRATE the withdrawal crawls (≥ one MRAI per hop), so \
         nodes explore alternate paths in the meantime — the e factors rise \
         well above the NO-WRATE floor of ~2 (one withdrawal + one \
         announcement), and convergence takes minutes instead of seconds. \
         This is the paper's case against RFC 4271's WRATE requirement."
    );
}
