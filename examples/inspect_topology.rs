//! Topology inspector: generate an instance, validate every structural
//! invariant, and measure the paper's four "stable properties" (§3).
//!
//! Optionally writes a Graphviz sketch:
//!
//! ```sh
//! cargo run --release --example inspect_topology            # summary
//! cargo run --release --example inspect_topology -- 2000 7  # n, seed
//! ```

use bgpscale::prelude::*;
use bgpscale::stats::powerlaw::fit_power_law_auto;
use bgpscale::topology::metrics::{degree_sequence, TopologySummary};
use bgpscale::topology::validate::validate;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let graph = generate(GrowthScenario::Baseline, n, seed);
    match validate(&graph) {
        Ok(()) => println!("validation: OK (all structural invariants hold)"),
        Err(violations) => {
            println!("validation: {} violations!", violations.len());
            for v in violations.iter().take(10) {
                println!("  {v}");
            }
            std::process::exit(1);
        }
    }

    let summary = TopologySummary::compute(&graph, seed);
    println!("\nTopology summary (n = {n}, seed = {seed}):");
    println!(
        "  population        : T={} M={} CP={} C={}",
        summary.population[0], summary.population[1], summary.population[2], summary.population[3]
    );
    println!(
        "  links             : {} transit, {} peering",
        summary.transit_links, summary.peer_links
    );
    println!(
        "  multihoming (mean): M={:.2} CP={:.2} C={:.2}",
        summary.mean_mhd[1], summary.mean_mhd[2], summary.mean_mhd[3]
    );

    println!("\nThe four stable properties (§3):");
    println!("  1. hierarchy          : provider relation acyclic (validated)");
    let degrees = degree_sequence(&graph);
    match fit_power_law_auto(&degrees, 50) {
        Some(fit) => println!(
            "  2. power-law degrees  : α ≈ {:.2} for k ≥ {} (KS = {:.3}); max degree {} vs mean {:.1}",
            fit.alpha, fit.k_min, fit.ks, degrees[0], summary.mean_degree
        ),
        None => println!("  2. power-law degrees  : sample too small to fit"),
    }
    println!("  3. strong clustering  : C = {:.3}", summary.clustering);
    println!(
        "  4. constant path length: {:.2} AS hops (valley-free)",
        summary.avg_path_length
    );
}
