//! Churn monitor: the Fig. 1 pipeline — a bursty daily update-count
//! series analyzed with the Mann–Kendall trend test and Sen's slope.
//!
//! The series is synthetic (see DESIGN.md §2: the RIPE RIS archive is not
//! available offline), but the analysis is exactly the paper's.
//!
//! ```sh
//! cargo run --release --example churn_monitor
//! ```

use bgpscale::experiments::churn_trace::{analyze_trace, generate_trace, ChurnTraceConfig};
use bgpscale::stats::mann_kendall::Trend;

fn main() {
    let cfg = ChurnTraceConfig::default();
    let trace = generate_trace(&cfg);
    let analysis = analyze_trace(&trace);

    // A terminal sparkline of quarterly means.
    println!("daily BGP updates at the monitor, quarterly means:");
    let quarters: Vec<f64> = trace
        .chunks(90)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let max = quarters.iter().copied().fold(1.0f64, f64::max);
    for (i, &q) in quarters.iter().enumerate() {
        let bar = "#".repeat((q / max * 50.0).round() as usize);
        println!("  Q{:02} {bar} {q:.0}", i + 1);
    }

    println!("\nMann–Kendall analysis (the paper's Fig. 1 method):");
    println!("  tau        = {:.3}", analysis.mk.tau);
    println!("  Z          = {:.2}", analysis.mk.z);
    println!("  p-value    = {:.3e}", analysis.mk.p_value);
    println!(
        "  trend      = {:?} at the 5% level",
        analysis.mk.trend(0.05)
    );
    println!(
        "  Sen slope  = {:.1} additional updates/day per day",
        analysis.sen_slope_per_day
    );
    println!(
        "  growth     = {:.0}% total over {} days (paper: ~200% over 2005–2007)",
        analysis.total_growth_estimate * 100.0,
        trace.len()
    );
    println!("  peak/mean  = {:.1}× (burstiness)", analysis.peak_to_mean);

    assert_eq!(analysis.mk.trend(0.05), Trend::Increasing);
}
