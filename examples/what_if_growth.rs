//! What-if growth scenarios: how would different futures of the Internet
//! change BGP churn at tier-1 networks? (The §5 question.)
//!
//! Sweeps three contrasting growth models over increasing network sizes
//! and prints the Fig. 8/9-style comparison.
//!
//! ```sh
//! cargo run --release --example what_if_growth
//! ```

use bgpscale::prelude::*;

fn main() {
    let scenarios = [
        GrowthScenario::Baseline,
        GrowthScenario::DenseCore,    // providers multihome 3× harder
        GrowthScenario::ConstantMhd,  // multihoming stops growing
    ];
    let sizes = [1_000usize, 2_000, 3_000, 4_000];
    let events = 15;
    let seed = 0x2008_0612;

    println!("mean updates per C-event at tier-1 (T) nodes\n");
    print!("{:>6}", "n");
    for s in scenarios {
        print!("  {:>14}", s.name());
    }
    println!();

    for n in sizes {
        print!("{n:>6}");
        for scenario in scenarios {
            let report = run_experiment(&ExperimentConfig {
                scenario,
                n,
                events,
                seed,
                bgp: BgpConfig::default(),
                event_limit: None,
                wheel_slot_bits: None,
            });
            print!("  {:>14.2}", report.by_type(NodeType::T).u_total);
        }
        println!();
    }

    println!(
        "\nReading: DENSE-CORE grows fastest (meshed mid-tier providers multiply \
         updates); CONSTANT-MHD stays nearly flat — topology growth alone does \
         not increase per-event churn, growing *connectivity* does (§5.2)."
    );
}
