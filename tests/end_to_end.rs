//! Cross-crate integration: the full pipeline from topology generation
//! through simulation to churn reports, exercised through the facade
//! crate's public API exactly as a downstream user would.

use bgpscale::prelude::*;
use bgpscale::topology::validate::validate;

#[test]
fn full_pipeline_baseline() {
    let cfg = ExperimentConfig {
        scenario: GrowthScenario::Baseline,
        n: 400,
        events: 5,
        seed: 1,
        bgp: BgpConfig::default(),
        event_limit: None,
        wheel_slot_bits: None,
    };
    let report = run_experiment(&cfg);
    assert_eq!(report.n, 400);
    assert_eq!(report.events, 5);
    // Every type observed churn.
    for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
        assert!(report.by_type(ty).u_total > 0.0, "{ty} saw nothing");
    }
    // Eq. 1 reconstruction at the report level.
    for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
        let sum: f64 = Relationship::ALL.iter().map(|&rel| report.u(ty, rel)).sum();
        assert!((sum - report.by_type(ty).u_total).abs() < 1e-6);
    }
}

#[test]
fn experiment_is_reproducible_end_to_end() {
    let cfg = ExperimentConfig {
        scenario: GrowthScenario::DenseCore,
        n: 300,
        events: 4,
        seed: 99,
        bgp: BgpConfig::default(),
        event_limit: None,
        wheel_slot_bits: None,
    };
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.mean_total_updates, b.mean_total_updates);
    assert_eq!(a.mean_down_convergence_s, b.mean_down_convergence_s);
    for ty in [NodeType::T, NodeType::M] {
        assert_eq!(a.by_type(ty).u_total, b.by_type(ty).u_total);
        assert_eq!(a.by_type(ty).per_event_u, b.by_type(ty).per_event_u);
    }
}

#[test]
fn every_scenario_runs_end_to_end() {
    for scenario in GrowthScenario::ALL {
        let report = run_experiment(&ExperimentConfig {
            scenario,
            n: 250,
            events: 2,
            seed: 5,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        });
        assert!(
            report.mean_total_updates > 0.0,
            "{scenario} produced no churn"
        );
    }
}

#[test]
fn simulator_and_oracle_agree_on_reachability() {
    // After convergence, a node has a route iff the valley-free oracle
    // says the origin is reachable (always, in a validated topology), and
    // the BGP path is at least as long as the oracle's shortest
    // valley-free path (policy can prefer longer customer routes).
    use bgpscale::topology::valley::valley_free_distances;
    let graph = generate(GrowthScenario::Baseline, 300, 11);
    validate(&graph).unwrap();
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .unwrap();
    let oracle = valley_free_distances(&graph, origin);
    let mut sim = Simulator::new(graph, BgpConfig::default(), 11);
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    for id in sim.graph().node_ids() {
        if id == origin {
            continue;
        }
        let (_, path) = sim
            .node(id)
            .best_route(Prefix(0))
            .unwrap_or_else(|| panic!("{id} unreachable"));
        let lower_bound = oracle[id.index()].expect("oracle agrees reachable");
        assert!(
            path.len() as u32 >= lower_bound,
            "{id}: BGP path {} hops < valley-free minimum {lower_bound}",
            path.len()
        );
    }
}

#[test]
fn wrate_increases_churn_at_moderate_scale() {
    // The §6 headline at a size where it is statistically robust.
    let mut totals = Vec::new();
    for bgp in [BgpConfig::no_wrate(), BgpConfig::wrate()] {
        let report = run_experiment(&ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 600,
            events: 8,
            seed: 3,
            bgp,
            event_limit: None,
            wheel_slot_bits: None,
        });
        totals.push(report.mean_total_updates);
    }
    assert!(
        totals[1] > totals[0],
        "WRATE {} should exceed NO-WRATE {}",
        totals[1],
        totals[0]
    );
}

#[test]
fn tree_invariant_holds_through_the_facade() {
    let report = run_experiment(&ExperimentConfig {
        scenario: GrowthScenario::Tree,
        n: 300,
        events: 6,
        seed: 8,
        bgp: BgpConfig::default(),
        event_limit: None,
        wheel_slot_bits: None,
    });
    assert!(
        (report.by_type(NodeType::T).u_total - 2.0).abs() < 1e-9,
        "TREE: U(T) = {}",
        report.by_type(NodeType::T).u_total
    );
}

#[test]
fn convergence_time_reported_in_seconds() {
    let report = run_experiment(&ExperimentConfig {
        scenario: GrowthScenario::Baseline,
        n: 300,
        events: 3,
        seed: 21,
        bgp: BgpConfig::default(),
        event_limit: None,
        wheel_slot_bits: None,
    });
    // NO-WRATE DOWN convergence: sub-minute; UP can take a few MRAI
    // rounds.
    assert!(report.mean_down_convergence_s > 0.0);
    assert!(report.mean_down_convergence_s < 60.0);
    assert!(report.mean_up_convergence_s < 300.0);
}
