//! Every versioned artifact writer stamps the shared `schema_version`.
//!
//! The constant lives in exactly one place — [`bgpscale_obs::SCHEMA_VERSION`] —
//! and the writers embed it: `metrics.json` (`MetricsRegistry::to_json`),
//! `costmodel.json` (`CostModel::to_json`), `timeseries.json` (the
//! `repro report` wrapper), `BENCH_harness.json` (`bench::render_json`),
//! the perf baselines (`perf::baseline_json`), and every run-ledger line
//! (`LedgerRecord::to_line`). A writer that forgets
//! the stamp (or stamps a different number) fails here before it can ship
//! an unversioned artifact.

use bgpscale_experiments::htmlreport::{run_report, ReportConfig};
use bgpscale_experiments::perf::{baseline_json, measure, PerfConfig};
use bgpscale_experiments::{bench, RunConfig};
use bgpscale_obs::{CostModel, MetricsRegistry, OpCounts, SCHEMA_VERSION};
use bgpscale_topology::GrowthScenario;

/// `"schema_version": N` (or the compact `"schema_version":N`) appears in
/// the document with the shared constant as its value.
fn assert_stamped(doc: &str, what: &str) {
    let spaced = format!("\"schema_version\": {SCHEMA_VERSION}");
    let compact = format!("\"schema_version\":{SCHEMA_VERSION}");
    assert!(
        doc.contains(&spaced) || doc.contains(&compact),
        "{what} is missing schema_version {SCHEMA_VERSION}: {}",
        &doc[..doc.len().min(200)]
    );
}

#[test]
fn metrics_json_is_stamped() {
    let mut m = MetricsRegistry::new();
    m.inc("events.total", 3);
    assert_stamped(&m.to_json(), "metrics.json");
}

#[test]
fn costmodel_json_is_stamped() {
    let mut c = CostModel::new();
    c.push_event([OpCounts::default(); 3]);
    assert_stamped(&c.to_json(), "costmodel.json");
}

#[test]
fn timeseries_json_and_bench_json_are_stamped() {
    // One tiny report covers the timeseries wrapper…
    let report = run_report(&ReportConfig {
        scenario: GrowthScenario::Baseline,
        n: 150,
        events: 2,
        seed: 11,
        jobs: 2,
        bin_us: 100_000,
    });
    assert_stamped(&report.timeseries_json, "timeseries.json");

    // …and one tiny bench covers BENCH_harness.json.
    let cfg = RunConfig {
        sizes: vec![150],
        events: 2,
        seed: 11,
    };
    let out = bench::run_bench(&cfg, &[1]);
    assert_stamped(&bench::render_json(&cfg, &out, "testrev"), "BENCH_harness.json");
}

#[test]
fn trace_header_is_stamped() {
    let mut w = bgpscale_obs::TraceWriter::new(Vec::new());
    w.write_header().unwrap();
    let text = String::from_utf8(w.finish().unwrap()).unwrap();
    assert_stamped(&text, "trace header");
}

#[test]
fn ledger_line_is_stamped() {
    let cfg = PerfConfig {
        scenario: GrowthScenario::Baseline,
        n: 150,
        events: 2,
        seed: 11,
        jobs: 2,
        baseline_dir: std::env::temp_dir(),
        perturb: None,
        wheel_slot_bits: None,
    };
    let m = measure(&cfg);
    let record = bgpscale_experiments::trend::record_from_perf(&cfg, &m, "testrev");
    assert_stamped(&record.to_line(), "ledger line");
}

#[test]
fn perf_baseline_is_stamped() {
    let cfg = PerfConfig {
        scenario: GrowthScenario::Baseline,
        n: 150,
        events: 2,
        seed: 11,
        jobs: 2,
        baseline_dir: std::env::temp_dir(),
        perturb: None,
        wheel_slot_bits: None,
    };
    let m = measure(&cfg);
    assert_stamped(&baseline_json(&cfg, &m), "perf baseline");
}
