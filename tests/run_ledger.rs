//! Cross-crate contract tests for the run ledger (`obs::ledger` +
//! `experiments::trend`): the deterministic half of every record is
//! byte-identical for any worker count, history dedupes on content, and
//! a damaged ledger is rejected loudly instead of silently analyzed.

use bgpscale_experiments::perf::{measure, PerfConfig};
use bgpscale_experiments::trend::{self, TrendOptions};
use bgpscale_obs::ledger::{append_records, read_ledger, LedgerError};
use bgpscale_topology::GrowthScenario;

fn cell_cfg(jobs: usize) -> PerfConfig {
    PerfConfig {
        scenario: GrowthScenario::Baseline,
        n: 150,
        events: 2,
        seed: 7,
        jobs,
        baseline_dir: std::path::PathBuf::from("/nonexistent"),
        perturb: None,
        wheel_slot_bits: None,
    }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bgpscale_ledger_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("runs.jsonl")
}

/// The ISSUE acceptance bar: ledger `det` fields are byte-identical
/// across `--jobs 1/4/8`. Only the wall side may differ.
#[test]
fn det_fields_are_byte_identical_across_jobs_1_4_8() {
    let records: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&jobs| {
            let cfg = cell_cfg(jobs);
            trend::record_from_perf(&cfg, &measure(&cfg), "testrev")
        })
        .collect();
    let baseline = records[0].det_json();
    for (r, jobs) in records.iter().zip([1u64, 4, 8]) {
        assert_eq!(r.det_json(), baseline, "det bytes drifted at jobs={jobs}");
        assert_eq!(r.det_hash(), records[0].det_hash());
        assert_eq!(r.wall.jobs, jobs, "jobs is recorded wall-side");
    }
}

/// Re-recording the same config at the same revision is recognized by
/// content hash and skipped; a different revision appends.
#[test]
fn same_config_and_rev_dedupes_by_content_hash() {
    let path = temp_path("dedupe");
    let _ = std::fs::remove_file(&path);
    let cfg = cell_cfg(1);
    let m = measure(&cfg);
    let first = trend::record_from_perf(&cfg, &m, "revA");
    let out = append_records(&path, std::slice::from_ref(&first)).unwrap();
    assert_eq!((out.appended, out.deduped), (1, 0));

    // Same cell, same rev, fresh measurement: different wall time, same
    // det content → deduped.
    let rerun = trend::record_from_perf(&cfg, &measure(&cfg), "revA");
    let out = append_records(&path, &[rerun]).unwrap();
    assert_eq!((out.appended, out.deduped), (0, 1));

    // Same cell at a new revision is new history.
    let next_rev = trend::record_from_perf(&cfg, &m, "revB");
    let out = append_records(&path, &[next_rev]).unwrap();
    assert_eq!((out.appended, out.deduped), (1, 0));

    let history = read_ledger(&path).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].git_rev, "revA");
    assert_eq!(history[1].git_rev, "revB");
    assert_eq!(
        history[0].fingerprint(),
        history[1].fingerprint(),
        "same cell, one series"
    );
    std::fs::remove_file(&path).unwrap();
}

/// A truncated trailing line (interrupted write) fails the canonical
/// round-trip and surfaces as `Corrupt` with its line number — the CLI
/// maps this to exit 2 rather than analyzing a damaged history.
#[test]
fn truncated_trailing_line_is_rejected_as_corrupt() {
    let path = temp_path("truncate");
    let _ = std::fs::remove_file(&path);
    let cfg = cell_cfg(1);
    let m = measure(&cfg);
    append_records(&path, &[trend::record_from_perf(&cfg, &m, "revA")]).unwrap();
    append_records(&path, &[trend::record_from_perf(&cfg, &m, "revB")]).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.trim_end().len() - 25;
    std::fs::write(&path, &text[..cut]).unwrap();

    match read_ledger(&path) {
        Err(LedgerError::Corrupt { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Corrupt at line 2, got {other:?}"),
    }
    // Appending to a damaged ledger must refuse too, not paper over it.
    assert!(matches!(
        append_records(&path, &[trend::record_from_perf(&cfg, &m, "revC")]),
        Err(LedgerError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

/// Disk round trip feeds the trend gate: two revisions of real
/// measurements pass fresh, and a seeded perturbation is caught.
#[test]
fn trend_gate_passes_fresh_history_and_catches_perturbation() {
    let path = temp_path("trend");
    let _ = std::fs::remove_file(&path);
    let cfg = cell_cfg(1);
    let m = measure(&cfg);
    append_records(&path, &[trend::record_from_perf(&cfg, &m, "revA")]).unwrap();
    append_records(&path, &[trend::record_from_perf(&cfg, &m, "revB")]).unwrap();

    let mut records = read_ledger(&path).unwrap();
    let opts = TrendOptions::default();
    let report = trend::analyze(&records, &opts);
    assert_eq!(report.revs, vec!["revA", "revB"]);
    assert!(report.regressions.is_empty(), "{:?}", report.regressions);

    trend::perturb_latest(&mut records, 1);
    let perturbed = trend::analyze(&records, &opts);
    assert!(
        !perturbed.regressions.is_empty(),
        "seeded perturbation must trip the gate"
    );
    std::fs::remove_file(&path).unwrap();
}
