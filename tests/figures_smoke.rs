//! Smoke-level regeneration of every table and figure through the
//! experiments crate, at toy scale: every driver must produce populated,
//! deterministic output, and the scale-robust claims must hold.

use bgpscale::experiments::{figures, RunConfig, Sweeper};

fn tiny_sweeper() -> Sweeper {
    Sweeper::new(RunConfig::tiny())
}

#[test]
fn every_figure_renders_nonempty() {
    let mut sw = tiny_sweeper();
    let cfg = sw.config().clone();
    let figures: Vec<bgpscale::experiments::Figure> = vec![
        figures::table1::run(&cfg),
        figures::fig1::run(cfg.seed),
        figures::fig3::run(cfg.seed),
        figures::fig4::run(&mut sw),
        figures::fig5::run(&mut sw),
        figures::fig6::run(&mut sw),
        figures::fig7::run(&mut sw),
        figures::fig8::run(&mut sw),
        figures::fig9::run(&mut sw),
        figures::fig10::run(&mut sw),
        figures::fig11::run(&mut sw),
        figures::fig12::run(&mut sw),
    ];
    for fig in &figures {
        assert!(!fig.tables.is_empty(), "{} has no tables", fig.id);
        for table in &fig.tables {
            assert!(!table.rows.is_empty(), "{}: table '{}' empty", fig.id, table.title);
        }
        assert!(!fig.claims.is_empty(), "{} asserts nothing", fig.id);
        let rendered = fig.render();
        assert!(rendered.contains(&fig.id));
    }
    // The cache makes the Baseline sweep shared across figures: far fewer
    // cells than figures × sizes.
    assert!(sw.cached_cells() <= 50, "cache ineffective: {}", sw.cached_cells());
}

#[test]
fn figure_output_is_deterministic() {
    let mut a = tiny_sweeper();
    let mut b = tiny_sweeper();
    assert_eq!(
        figures::fig4::run(&mut a).render(),
        figures::fig4::run(&mut b).render()
    );
    assert_eq!(
        figures::fig8::run(&mut a).render(),
        figures::fig8::run(&mut b).render()
    );
}

#[test]
fn csv_export_shape_matches_tables() {
    let mut sw = tiny_sweeper();
    let fig = figures::fig4::run(&mut sw);
    for table in &fig.tables {
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), table.rows.len() + 1);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(header_cols, table.headers.len());
    }
}
