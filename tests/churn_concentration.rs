//! Churn concentration: the paper cites Broido et al. — "a small fraction
//! of ASes is responsible for most of the churn seen in the Internet."
//! In our model the *receivers* of churn are likewise concentrated: the
//! hierarchy funnels updates through well-connected transit nodes. These
//! tests quantify that with the Gini coefficient over per-node received
//! updates.

use bgpscale::prelude::*;
use bgpscale::stats::gini;

fn per_node_churn(n: usize, seed: u64) -> Vec<f64> {
    let graph = generate(GrowthScenario::Baseline, n, seed);
    let origins: Vec<_> = graph
        .node_ids()
        .filter(|&id| graph.node_type(id) == NodeType::C)
        .take(5)
        .collect();
    let mut sim = Simulator::new(graph, BgpConfig::default(), seed);
    let mut totals = vec![0u64; sim.graph().len()];
    for (i, &o) in origins.iter().enumerate() {
        run_c_event(&mut sim, o, Prefix(i as u32)).unwrap();
        for id in sim.graph().node_ids() {
            totals[id.index()] += sim.churn().node_total(id);
        }
        sim.reset_routing();
        sim.churn_mut().reset();
    }
    totals.into_iter().map(|t| t as f64).collect()
}

#[test]
fn received_churn_is_concentrated() {
    let churn = per_node_churn(400, 11);
    let g = gini(&churn);
    // Every AS hears about every event at least twice (DOWN + UP), which
    // puts a floor under the distribution; the transit hierarchy still
    // skews it visibly above uniform (gini 0).
    assert!(
        g > 0.15,
        "churn should concentrate in the transit hierarchy, gini = {g}"
    );
}

#[test]
fn concentration_does_not_collapse_with_size() {
    // The hierarchy keeps funneling updates through the core as the
    // network grows: concentration stays high.
    let small = gini(&per_node_churn(250, 12));
    let large = gini(&per_node_churn(600, 12));
    assert!(small > 0.15 && large > 0.15, "gini {small} → {large}");
}

#[test]
fn top_decile_receives_disproportionate_share() {
    let mut churn = per_node_churn(500, 13);
    churn.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = churn.iter().sum();
    let top_decile: f64 = churn.iter().take(churn.len() / 10).sum();
    let share = top_decile / total;
    assert!(
        share > 0.15,
        "top 10% of ASes should receive well over their uniform 10% share, got {:.0}%",
        share * 100.0
    );
}
