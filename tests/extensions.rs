//! Cross-crate integration tests for the extension machinery (L-events,
//! Route Flap Damping, flap storms, burstiness timelines), driven through
//! the facade exactly as a downstream user would.

use bgpscale::bgp::rfd::RfdConfig;
use bgpscale::core::flapstorm::{run_flap_storm, FlapStormConfig};
use bgpscale::core::levent::run_l_event;
use bgpscale::prelude::*;

fn setup(n: usize, seed: u64, bgp: BgpConfig) -> (Simulator, AsId) {
    let graph = generate(GrowthScenario::Baseline, n, seed);
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .unwrap();
    (Simulator::new(graph, bgp, seed), origin)
}

#[test]
fn l_event_through_the_facade() {
    let (mut sim, origin) = setup(250, 1, BgpConfig::default());
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let provider = sim.graph().providers(origin).next().unwrap();
    let outcome = run_l_event(&mut sim, origin, provider, Prefix(0)).unwrap();
    assert!(outcome.fail_updates > 0);
    assert!(outcome.restore_updates > 0);
    // Healing matches multihoming.
    let multihomed = sim.graph().multihoming_degree(origin) > 1;
    assert_eq!(outcome.unreachable_during_outage == 0, multihomed);
}

#[test]
fn mrai_scope_is_selectable_from_config() {
    for scope in [MraiScope::PerInterface, MraiScope::PerPrefix] {
        let cfg = BgpConfig {
            mrai_scope: scope,
            ..BgpConfig::default()
        };
        let (mut sim, origin) = setup(200, 2, cfg);
        let outcome = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        assert!(outcome.total_updates > 0, "{scope:?}");
        assert_eq!(sim.node(origin).mrai_scope(), scope);
    }
}

#[test]
fn damping_suppresses_then_recovers_through_the_facade() {
    let cfg = BgpConfig {
        rfd: Some(RfdConfig::default()),
        ..BgpConfig::default()
    };
    let (mut sim, origin) = setup(250, 3, cfg);
    let storm = FlapStormConfig {
        flaps: 6,
        ..FlapStormConfig::default()
    };
    let outcome = run_flap_storm(&mut sim, origin, Prefix(0), &storm).unwrap();
    assert!(outcome.suppressed_nodes > 0);
    assert_eq!(outcome.unreachable_after_reuse, 0);
    // Every node routes the prefix again at the very end.
    for id in sim.graph().node_ids() {
        assert!(sim.node(id).best_route(Prefix(0)).is_some(), "{id}");
    }
}

#[test]
fn timeline_burstiness_through_the_facade() {
    let (mut sim, origin) = setup(300, 4, BgpConfig::default());
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let start = sim.now();
    sim.churn_mut()
        .start_timeline(start, SimDuration::from_secs(1));
    run_c_event(&mut sim, origin, Prefix(1)).unwrap();
    let tl = sim.churn_mut().take_timeline().unwrap();
    assert!(
        tl.peak_to_mean() > 1.5,
        "convergence traffic should be bursty, got {}",
        tl.peak_to_mean()
    );
}

#[test]
fn determinism_spans_all_extension_features() {
    // One combined scenario: damping + a storm + an L-event; two runs
    // must agree exactly.
    let mut signatures = Vec::new();
    for _ in 0..2 {
        let cfg = BgpConfig {
            rfd: Some(RfdConfig::default()),
            ..BgpConfig::default()
        };
        let (mut sim, origin) = setup(200, 5, cfg);
        let storm = FlapStormConfig {
            flaps: 3,
            ..FlapStormConfig::default()
        };
        let s = run_flap_storm(&mut sim, origin, Prefix(0), &storm).unwrap();
        let provider = sim.graph().providers(origin).next().unwrap();
        let l = run_l_event(&mut sim, origin, provider, Prefix(0)).unwrap();
        signatures.push((
            s.total_updates,
            s.suppressed_nodes,
            l.fail_updates,
            l.restore_updates,
            sim.events_processed(),
        ));
    }
    assert_eq!(signatures[0], signatures[1]);
}
